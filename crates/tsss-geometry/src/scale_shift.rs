//! The scale-shift transformation `F_{a,b}` and the closed-form optimal fit
//! of paper §3 and §5.2.
//!
//! Definition 1 of the paper: `u ~ε v` iff there exist `a, b ∈ ℝ` with
//! `‖F_{a,b}(u) − v‖₂ ≤ ε`, where `F_{a,b}(u) = a·u + b·N`. The minimum of
//! `‖a·u + b·N − v‖` over all `(a, b)` is a tiny least-squares problem whose
//! solution the paper derives geometrically (§5.2):
//!
//! ```text
//! a = (T_se(u) · T_se(v)) / ‖T_se(u)‖²           (in the SE-Plane)
//! b = ((v − a·u) · N) / ‖N‖²                      (back in ℝⁿ)
//! ```
//!
//! [`optimal_scale_shift`] computes `(a, b)` and the attained distance in one
//! pass (O(n), no allocation), and [`min_scale_shift_distance`] returns just
//! the distance — it equals `LLD(Line_sa(u), Line_sh(v))` by Theorem 1, a
//! fact the property tests exercise.

use crate::vector::{mean, norm_sq, sum_and_dot, sum_dot_normsq_lanes};
use crate::DimensionMismatch;

/// A concrete scale-shift transformation `F_{a,b}(x) = a·x + b·N`.
///
/// This is the object reported to the user for each match: *how* the query
/// maps onto the matched subsequence (paper §6, post-processing step).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleShift {
    /// Scaling factor `a`.
    pub a: f64,
    /// Shifting offset `b`.
    pub b: f64,
}

impl ScaleShift {
    /// The identity transformation (`a = 1`, `b = 0`).
    pub const IDENTITY: Self = Self { a: 1.0, b: 0.0 };

    /// Applies `F_{a,b}` to `x`, returning `a·x + b·N`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|v| self.a * v + self.b).collect()
    }

    /// Applies `F_{a,b}` in place.
    pub fn apply_in_place(&self, x: &mut [f64]) {
        for v in x {
            *v = self.a * *v + self.b;
        }
    }

    /// The inverse transformation, if `a ≠ 0`: `F⁻¹(y) = (y − b·N)/a`.
    ///
    /// Returns `None` for the non-invertible `a = 0` case (which maps every
    /// sequence to the constant `b·N`).
    pub fn inverse(&self) -> Option<Self> {
        // analyze::allow(float-eq): exact-zero test — `a` is non-invertible only when literally 0.0; any tiny non-zero scale still divides to a finite inverse.
        if self.a == 0.0 {
            None
        } else {
            Some(Self {
                a: 1.0 / self.a,
                b: -self.b / self.a,
            })
        }
    }

    /// Composition: `(self ∘ other)(x) = self.apply(other.apply(x))`.
    ///
    /// Scale-shift transformations form a monoid under composition (a group
    /// when `a ≠ 0`); the Figure 1 example of the paper (B scaled by 0.5 then
    /// shifted by 20 gives C) is a composition check in the tests.
    pub fn compose(&self, other: &Self) -> Self {
        Self {
            a: self.a * other.a,
            b: self.a * other.b + self.b,
        }
    }
}

/// Result of fitting the best scale-shift transformation of one sequence
/// onto another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleShiftFit {
    /// The optimal transformation.
    pub transform: ScaleShift,
    /// The attained distance `‖F_{a,b}(u) − v‖₂` — by Theorem 1 this equals
    /// `LLD(Line_sa(u), Line_sh(v))`, the minimum possible dissimilarity.
    pub distance: f64,
}

/// Relative variance threshold below which a sequence counts as constant for
/// fitting purposes (see [`is_numerically_constant`]).
const CONSTANT_REL_TOL: f64 = 1e-24;

/// True when `u` is numerically constant — zero fluctuation relative to its
/// magnitude, so its SE-transformation vanishes and its SE-line degenerates
/// to the origin.
///
/// This is *the* degeneracy test [`optimal_scale_shift`] applies, exposed so
/// search layers can branch to a shift-only query plan and stay consistent
/// with verification.
pub fn is_numerically_constant(u: &[f64]) -> bool {
    if u.is_empty() {
        return true;
    }
    let n = u.len() as f64;
    let mu = mean(u);
    let uu = norm_sq(u);
    let ucuc = (uu - n * mu * mu).max(0.0);
    ucuc <= CONSTANT_REL_TOL * uu.max(1e-300)
}

/// Relative slack applied to the algebraic distance bound inside
/// [`QueryFit::fit_within`], scaled by the *uncentered* moment magnitudes so
/// it stays sound even when the centred quantities suffer catastrophic
/// cancellation. The true floating-point error of the bound — evaluation
/// error of the algebraic identity plus the reassociation error of the
/// lane-chunked screening kernel — is on the order of
/// `n·ε_mach ≈ 1e-13` of those magnitudes, so `1e-9` leaves four orders of
/// magnitude of safety; candidates inside the slack fall through to the
/// exact sequential fit.
const SCREEN_REL_TOL: f64 = 1e-9;

/// Query-side state of the closed-form scale-shift fit, hoisted out of the
/// per-candidate loop.
///
/// [`optimal_scale_shift`] recomputes `mean(u)` and `‖u‖²` for every call
/// even though the verify stage fits *one* query against thousands of
/// candidate windows. `QueryFit` computes the query moments once; each
/// [`fit`](Self::fit) then needs a single fused pass over the candidate
/// (plus the exact residual pass), and [`fit_within`](Self::fit_within)
/// screens certain false alarms with *only* the fused pass.
///
/// Bit-exactness contract: for any `u`/`v`, `QueryFit::new(u).fit(v)` equals
/// `optimal_scale_shift(u, v)` bit for bit — every accumulator adds the same
/// terms in the same order (see `tests/kernel_oracle.rs`).
#[derive(Debug, Clone, Copy)]
pub struct QueryFit<'a> {
    u: &'a [f64],
    n: f64,
    mu: f64,
    uu: f64,
    ucuc: f64,
    degenerate: bool,
}

impl<'a> QueryFit<'a> {
    /// Precomputes the query moments `n`, `ū`, `‖uc‖²` and the degeneracy
    /// flag (the same relative-variance test as [`is_numerically_constant`]).
    pub fn new(u: &'a [f64]) -> Self {
        let n = u.len() as f64;
        let mu = mean(u);
        let uu = norm_sq(u);
        let ucuc = (uu - n * mu * mu).max(0.0);
        let degenerate = ucuc <= CONSTANT_REL_TOL * uu.max(1e-300);
        Self {
            u,
            n,
            mu,
            uu,
            ucuc,
            degenerate,
        }
    }

    /// The query this fit was built over.
    #[must_use]
    pub fn query(&self) -> &'a [f64] {
        self.u
    }

    /// True when the query is numerically constant, i.e. every fit takes the
    /// shift-only degenerate arm (`a = 0`, `b = mean(v)`).
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }

    /// The optimal fit of the query onto `v` — bit-identical to
    /// [`optimal_scale_shift`]`(self.query(), v)`, in two passes over `v`
    /// instead of three.
    ///
    /// # Errors
    /// Returns [`DimensionMismatch`] when `v` differs in length.
    pub fn fit(&self, v: &[f64]) -> Result<ScaleShiftFit, DimensionMismatch> {
        if self.u.len() != v.len() {
            return Err(DimensionMismatch {
                left: self.u.len(),
                right: v.len(),
            });
        }
        if self.u.is_empty() {
            return Ok(ScaleShiftFit {
                transform: ScaleShift::IDENTITY,
                distance: 0.0,
            });
        }
        // One fused pass: Σv and u·v share the read of v. Each accumulator
        // matches its standalone kernel bit for bit.
        let (sv, suv) = sum_and_dot(self.u, v);
        let mv = sv / self.n;
        if self.degenerate {
            return Ok(self.degenerate_fit(v, mv));
        }
        let ucvc = suv - self.n * self.mu * mv;
        let a = ucvc / self.ucuc;
        let b = mv - a * self.mu;
        Ok(self.residual_fit(v, a, b))
    }

    /// Like [`fit`](Self::fit), but screens candidates whose distance
    /// *certainly* exceeds `epsilon` using one fused, lane-chunked
    /// (vectorisable) moment pass: returns `Ok(None)` for those, skipping
    /// the exact fit entirely.
    ///
    /// The screen is conservative. The algebraic identity
    /// `distance² = ‖vc‖² − a·(uc·vc)` is exact in real arithmetic but loses
    /// precision to cancellation, and the screening pass additionally
    /// reassociates its sums for speed; a candidate is rejected only when
    /// the algebraic value beats `epsilon²` by more than [`SCREEN_REL_TOL`]
    /// of the participating moment magnitudes, which dwarfs both error
    /// sources. Borderline candidates (and any NaN poisoning of the bound)
    /// fall through to the exact sequential fit, so every `Some(fit)` is
    /// bit-identical to [`fit`](Self::fit) and every `None` is a candidate
    /// [`fit`](Self::fit) would have reported with `distance > epsilon`.
    ///
    /// # Errors
    /// Returns [`DimensionMismatch`] when `v` differs in length.
    pub fn fit_within(
        &self,
        v: &[f64],
        epsilon: f64,
    ) -> Result<Option<ScaleShiftFit>, DimensionMismatch> {
        if self.u.len() != v.len() {
            return Err(DimensionMismatch {
                left: self.u.len(),
                right: v.len(),
            });
        }
        if self.u.is_empty() {
            return Ok(Some(ScaleShiftFit {
                transform: ScaleShift::IDENTITY,
                distance: 0.0,
            }));
        }
        let (sv, suv, svv) = sum_dot_normsq_lanes(self.u, v);
        let mv = sv / self.n;
        // ‖vc‖² = ‖v‖² − n·v̄²; scale_vc bounds the magnitudes whose
        // cancellation (and lane reassociation) the slack must absorb.
        let nmv2 = self.n * mv * mv;
        let vcvc = svv - nmv2;
        let scale_vc = svv.abs() + nmv2.abs();
        let screened_out = if self.degenerate {
            // a = 0 ⇒ distance² = ‖vc‖² exactly.
            vcvc - SCREEN_REL_TOL * scale_vc > epsilon * epsilon
        } else {
            let ucvc = suv - self.n * self.mu * mv;
            let a = ucvc / self.ucuc;
            let fitted = a * ucvc;
            let d2_alg = vcvc - fitted;
            let margin = SCREEN_REL_TOL * (scale_vc + fitted.abs());
            // NaN anywhere makes the comparison false — fall through to exact.
            d2_alg - margin > epsilon * epsilon
        };
        if screened_out {
            return Ok(None);
        }
        // Survivors take the exact sequential path, so accepted fits carry
        // the same bits as a plain `fit` call.
        self.fit(v).map(Some)
    }

    /// Sliding-window screen: like [`fit_within`](Self::fit_within), but the
    /// window's sum and sum-of-squares arrive as *prefix-array endpoint
    /// pairs* maintained by the caller (`p1 = (Σ before, Σ through)` over the
    /// raw values, `p2` the same over their squares), so the only O(n) work
    /// per candidate is a single lane-chunked dot product. This is the
    /// sequential-scan fast path, where stride-1 windows overlap almost
    /// entirely and per-window moment passes would recompute the same sums
    /// thousands of times.
    ///
    /// Soundness under the extra error sources is bought with a wider
    /// (still `O(1)`) margin: prefix differencing loses up to `ε_mach` of the
    /// *endpoint* magnitudes (which can dwarf the window's own moments), and
    /// the dot reassociates, with `Σ|uᵢvᵢ| ≤ √(‖u‖²·‖v‖²)` bounding its term
    /// magnitude by Cauchy–Schwarz. The margin scales with all of those, so
    /// the same guarantee holds: every `Some(fit)` is bit-identical to
    /// [`fit`](Self::fit), every `None` has true `distance > epsilon`.
    ///
    /// # Errors
    /// Returns [`DimensionMismatch`] when `v` differs in length.
    pub fn fit_within_sliding(
        &self,
        v: &[f64],
        epsilon: f64,
        p1: (f64, f64),
        p2: (f64, f64),
    ) -> Result<Option<ScaleShiftFit>, DimensionMismatch> {
        if self.u.len() != v.len() {
            return Err(DimensionMismatch {
                left: self.u.len(),
                right: v.len(),
            });
        }
        if self.u.is_empty() {
            return Ok(Some(ScaleShiftFit {
                transform: ScaleShift::IDENTITY,
                distance: 0.0,
            }));
        }
        let (lo1, hi1) = p1;
        let (lo2, hi2) = p2;
        let sv = hi1 - lo1;
        let svv = hi2 - lo2;
        let mv = sv / self.n;
        // Magnitude bounds for the error terms: `m1 ≥ |mv|` up to the same
        // relative error, `scale_p2` bounds what prefix differencing can
        // lose from `svv`.
        let m1 = (hi1.abs() + lo1.abs()) / self.n;
        let scale_p2 = hi2.abs() + lo2.abs();
        let nmv2 = self.n * mv * mv;
        let vcvc = svv - nmv2;
        let scale_vc = scale_p2 + self.n * m1 * m1;
        let screened_out = if self.degenerate {
            vcvc - SCREEN_REL_TOL * scale_vc > epsilon * epsilon
        } else {
            let suv = crate::vector::dot_lanes(self.u, v);
            let ucvc = suv - self.n * self.mu * mv;
            let a = ucvc / self.ucuc;
            let fitted = a * ucvc;
            let d2_alg = vcvc - fitted;
            // Cauchy–Schwarz bound on the dot's term magnitude; NaN anywhere
            // makes the final comparison false — fall through to exact.
            let ucvc_mag = (self.uu * scale_p2).sqrt() + self.n * self.mu.abs() * m1;
            let margin = SCREEN_REL_TOL * (scale_vc + a.abs() * ucvc_mag + fitted.abs());
            d2_alg - margin > epsilon * epsilon
        };
        if screened_out {
            return Ok(None);
        }
        self.fit(v).map(Some)
    }

    /// Shift-only arm: `a = 0`, `b = mean(v)`, distance `‖vc‖` via the exact
    /// residual sum (bit-identical to [`optimal_scale_shift`]).
    fn degenerate_fit(&self, v: &[f64], mv: f64) -> ScaleShiftFit {
        let resid: f64 = v.iter().map(|y| (y - mv) * (y - mv)).sum();
        ScaleShiftFit {
            transform: ScaleShift { a: 0.0, b: mv },
            distance: resid.sqrt(),
        }
    }

    /// Exact residual pass for a fixed `(a, b)` — the cancellation-free
    /// distance evaluation (bit-identical to [`optimal_scale_shift`]).
    fn residual_fit(&self, v: &[f64], a: f64, b: f64) -> ScaleShiftFit {
        let dist_sq: f64 = self
            .u
            .iter()
            .zip(v)
            .map(|(x, y)| {
                let r = a * x + b - y;
                r * r
            })
            .sum();
        ScaleShiftFit {
            transform: ScaleShift { a, b },
            distance: dist_sq.sqrt(),
        }
    }
}

/// Computes the optimal `(a, b)` minimising `‖a·u + b·N − v‖₂` together with
/// the attained distance, in a single O(n) pass (paper §5.2).
///
/// Derivation (all in terms of means and centred dot products): writing
/// `ū = mean(u)`, `uc = u − ū·N` (the SE-transformation of `u`, see
/// [`crate::se`]) and likewise for `v`,
///
/// ```text
/// a = (uc · vc) / ‖uc‖²,    b = v̄ − a·ū,
/// distance² = ‖vc‖² − a²·‖uc‖².
/// ```
///
/// Degenerate case: when `u` is (numerically) constant, its SE-transformation
/// vanishes and *any* `a` is optimal; we canonically return `a = 0`,
/// `b = mean(v)`, with distance `‖vc‖`.
///
/// ```
/// use tsss_geometry::scale_shift::optimal_scale_shift;
/// // Sequences A and B of the paper's Figure 1: B = 2·A exactly.
/// let a = [5.0, 10.0, 6.0, 12.0, 4.0];
/// let b = [10.0, 20.0, 12.0, 24.0, 8.0];
/// let fit = optimal_scale_shift(&a, &b).unwrap();
/// assert!((fit.transform.a - 2.0).abs() < 1e-12);
/// assert!(fit.transform.b.abs() < 1e-9);
/// assert!(fit.distance < 1e-6);
/// ```
///
/// # Errors
/// Returns [`DimensionMismatch`] when the sequences differ in length.
pub fn optimal_scale_shift(u: &[f64], v: &[f64]) -> Result<ScaleShiftFit, DimensionMismatch> {
    // Centred second moments computed without materialising uc/vc
    // (uc·vc = u·v − n·ū·v̄ ; ‖uc‖² = ‖u‖² − n·ū²), then the exact residual
    // pass for the distance — the algebraic identity
    // distance² = ‖vc‖² − a²·‖uc‖² suffers catastrophic cancellation for
    // near-exact matches. All of that lives in `QueryFit`, which hoists the
    // query-side moments for callers fitting one query against many windows;
    // this one-shot entry point is the same computation, bit for bit.
    QueryFit::new(u).fit(v)
}

/// The minimum dissimilarity `min_{a,b} ‖a·u + b·N − v‖₂`.
///
/// By Theorem 1 / Corollary 1 this is *the* distance of the paper's
/// similarity model: `u ~ε v` iff `min_scale_shift_distance(u, v) ≤ ε`.
///
/// # Errors
/// Returns [`DimensionMismatch`] when the sequences differ in length.
pub fn min_scale_shift_distance(u: &[f64], v: &[f64]) -> Result<f64, DimensionMismatch> {
    optimal_scale_shift(u, v).map(|fit| fit.distance)
}

/// Convenience predicate for Definition 1: `u ~ε v`.
///
/// # Errors
/// Returns [`DimensionMismatch`] when the sequences differ in length.
pub fn similar(u: &[f64], v: &[f64], epsilon: f64) -> Result<bool, DimensionMismatch> {
    Ok(min_scale_shift_distance(u, v)? <= epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::{lld, Line};
    use crate::vector::dist;

    const A: [f64; 5] = [5.0, 10.0, 6.0, 12.0, 4.0];
    const B: [f64; 5] = [10.0, 20.0, 12.0, 24.0, 8.0];
    const C: [f64; 5] = [25.0, 30.0, 26.0, 32.0, 24.0];

    #[test]
    fn apply_matches_definition() {
        let f = ScaleShift { a: 2.0, b: 0.0 };
        assert_eq!(f.apply(&A), B.to_vec());
        let g = ScaleShift { a: 1.0, b: 20.0 };
        assert_eq!(g.apply(&A), C.to_vec());
    }

    #[test]
    fn paper_figure1_composition_b_to_c() {
        // "if B is scaled down by 0.5 and then shifted up by 20 units, it
        // becomes C" — shift ∘ scale.
        let scale = ScaleShift { a: 0.5, b: 0.0 };
        let shift = ScaleShift { a: 1.0, b: 20.0 };
        let f = shift.compose(&scale);
        assert_eq!(f.apply(&B), C.to_vec());
    }

    #[test]
    fn apply_in_place_agrees_with_apply() {
        let f = ScaleShift { a: -1.5, b: 3.0 };
        let mut x = A.to_vec();
        f.apply_in_place(&mut x);
        assert_eq!(x, f.apply(&A));
    }

    #[test]
    fn inverse_roundtrips() {
        let f = ScaleShift { a: 2.5, b: -7.0 };
        let inv = f.inverse().unwrap();
        let x = A.to_vec();
        let back = inv.apply(&f.apply(&x));
        for (orig, b) in x.iter().zip(&back) {
            assert!((orig - b).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_of_zero_scale_is_none() {
        assert!(ScaleShift { a: 0.0, b: 1.0 }.inverse().is_none());
    }

    #[test]
    fn compose_is_function_composition() {
        let f = ScaleShift { a: 2.0, b: 1.0 };
        let g = ScaleShift { a: -3.0, b: 4.0 };
        let fg = f.compose(&g);
        let x = [1.0, 5.0, -2.0];
        assert_eq!(fg.apply(&x), f.apply(&g.apply(&x)));
    }

    #[test]
    fn optimal_fit_recovers_exact_transformations() {
        // A → B is exactly a = 2, b = 0.
        let fit = optimal_scale_shift(&A, &B).unwrap();
        assert!((fit.transform.a - 2.0).abs() < 1e-12);
        assert!(fit.transform.b.abs() < 1e-10);
        assert!(fit.distance < 1e-6);

        // A → C is exactly a = 1, b = 20.
        let fit = optimal_scale_shift(&A, &C).unwrap();
        assert!((fit.transform.a - 1.0).abs() < 1e-12);
        assert!((fit.transform.b - 20.0).abs() < 1e-10);
        assert!(fit.distance < 1e-6);

        // B → C is exactly a = 0.5, b = 20.
        let fit = optimal_scale_shift(&B, &C).unwrap();
        assert!((fit.transform.a - 0.5).abs() < 1e-12);
        assert!((fit.transform.b - 20.0).abs() < 1e-10);
        assert!(fit.distance < 1e-6);
    }

    #[test]
    fn fit_distance_is_achieved_by_the_transform() {
        let u = [1.0, -2.0, 3.5, 0.0, 7.0];
        let v = [2.0, 2.0, -1.0, 4.0, 0.5];
        let fit = optimal_scale_shift(&u, &v).unwrap();
        let transformed = fit.transform.apply(&u);
        assert!((dist(&transformed, &v) - fit.distance).abs() < 1e-10);
    }

    #[test]
    fn fit_distance_equals_lld_theorem1() {
        let u = [1.0, -2.0, 3.5, 0.0, 7.0];
        let v = [2.0, 2.0, -1.0, 4.0, 0.5];
        let fit = optimal_scale_shift(&u, &v).unwrap();
        let geometric = lld(&Line::scaling(&u), &Line::shifting(&v));
        assert!((fit.distance - geometric).abs() < 1e-9);
    }

    #[test]
    fn fit_is_at_least_as_good_as_random_transforms() {
        let u = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let v = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0];
        let fit = optimal_scale_shift(&u, &v).unwrap();
        for &(a, b) in &[
            (0.0, 0.0),
            (1.0, 0.0),
            (0.5, 3.0),
            (-2.0, 10.0),
            (3.3, -4.4),
        ] {
            let d = dist(&ScaleShift { a, b }.apply(&u), &v);
            assert!(fit.distance <= d + 1e-10, "({a},{b}) beat the optimum");
        }
    }

    #[test]
    fn constant_query_degenerates_to_mean_shift() {
        let u = [4.0; 6];
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let fit = optimal_scale_shift(&u, &v).unwrap();
        assert_eq!(fit.transform.a, 0.0);
        assert!((fit.transform.b - 3.5).abs() < 1e-12);
        // Distance = norm of centred v.
        let expect = v.iter().map(|x| (x - 3.5) * (x - 3.5)).sum::<f64>().sqrt();
        assert!((fit.distance - expect).abs() < 1e-10);
    }

    #[test]
    fn empty_sequences_are_trivially_similar() {
        let fit = optimal_scale_shift(&[], &[]).unwrap();
        assert_eq!(fit.distance, 0.0);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(optimal_scale_shift(&[1.0], &[1.0, 2.0]).is_err());
        assert!(min_scale_shift_distance(&[1.0], &[1.0, 2.0]).is_err());
        assert!(similar(&[1.0], &[1.0, 2.0], 1.0).is_err());
    }

    #[test]
    fn similar_predicate_thresholds_correctly() {
        assert!(similar(&A, &B, 1e-9).unwrap());
        let far = [0.0, 100.0, -30.0, 55.0, 2.0];
        let d = min_scale_shift_distance(&A, &far).unwrap();
        assert!(!similar(&A, &far, d - 1e-6).unwrap());
        assert!(similar(&A, &far, d + 1e-6).unwrap());
    }

    #[test]
    fn query_fit_is_bit_identical_to_one_shot() {
        let mut rng = tsss_rand::Rng::seed_from_u64(0xF17_B175);
        for n in [1usize, 2, 3, 7, 8, 64, 129] {
            let u = rng.f64_vec(n, -1e3, 1e3);
            let qf = QueryFit::new(&u);
            for _ in 0..8 {
                let v = rng.f64_vec(n, -1e3, 1e3);
                let one_shot = optimal_scale_shift(&u, &v).unwrap();
                let hoisted = qf.fit(&v).unwrap();
                assert_eq!(
                    hoisted.transform.a.to_bits(),
                    one_shot.transform.a.to_bits()
                );
                assert_eq!(
                    hoisted.transform.b.to_bits(),
                    one_shot.transform.b.to_bits()
                );
                assert_eq!(hoisted.distance.to_bits(), one_shot.distance.to_bits());
            }
        }
    }

    #[test]
    fn fit_within_is_sound_and_exact_on_accept() {
        // Soundness: every Some is bit-identical to the full fit; every None
        // really is a candidate whose exact distance exceeds epsilon.
        let mut rng = tsss_rand::Rng::seed_from_u64(0x05C1_2EE4);
        let mut screened = 0usize;
        let mut accepted = 0usize;
        for n in [3usize, 16, 128] {
            let u = rng.f64_vec(n, -50.0, 50.0);
            let qf = QueryFit::new(&u);
            for round in 0..32 {
                // Mix of near-fits and far candidates around each epsilon.
                let v = if round % 3 == 0 {
                    let mut v: Vec<f64> = u.iter().map(|x| 1.7 * x - 4.0).collect();
                    for y in &mut v {
                        *y += rng.f64_range(-0.5, 0.5);
                    }
                    v
                } else {
                    rng.f64_vec(n, -50.0, 50.0)
                };
                for eps in [0.0, 0.1, 2.0, 40.0, 1e6] {
                    let exact = qf.fit(&v).unwrap();
                    match qf.fit_within(&v, eps).unwrap() {
                        Some(fit) => {
                            accepted += 1;
                            assert_eq!(fit.distance.to_bits(), exact.distance.to_bits());
                            assert_eq!(fit.transform.a.to_bits(), exact.transform.a.to_bits());
                            assert_eq!(fit.transform.b.to_bits(), exact.transform.b.to_bits());
                        }
                        None => {
                            screened += 1;
                            assert!(
                                exact.distance > eps,
                                "screened a true match: d={} eps={eps}",
                                exact.distance
                            );
                        }
                    }
                }
            }
        }
        // The screen must actually fire on far candidates and actually pass
        // generous epsilons, or it is vacuous.
        assert!(screened > 50, "screen never fires ({screened})");
        assert!(accepted > 50, "screen rejects everything ({accepted})");
    }

    #[test]
    fn fit_within_sliding_is_sound_and_exact_on_accept() {
        // The sliding screen consumes prefix-array endpoints the way the
        // sequential-scan verifier maintains them: build a long series, run
        // every stride-1 window through the screen, and hold it to the same
        // contract as `fit_within` — accepted fits bit-identical to `fit`,
        // screened windows truly farther than epsilon.
        let mut rng = tsss_rand::Rng::seed_from_u64(0x511D_1234 ^ 0xA5A5);
        let mut screened = 0usize;
        let mut accepted = 0usize;
        for n in [3usize, 16, 128] {
            let u = rng.f64_vec(n, -50.0, 50.0);
            let qf = QueryFit::new(&u);
            // A series with matching stretches planted among noise, plus a
            // large offset so the prefix sums dwarf per-window moments (the
            // error regime the wider margin must absorb).
            let mut series = rng.f64_vec(6 * n, -50.0, 50.0);
            for (i, y) in series.iter_mut().enumerate() {
                *y += 1e4;
                if (i / n) % 2 == 1 {
                    *y = 1.7 * u[i % n] - 4.0 + 1e4;
                }
            }
            let mut p1 = vec![0.0f64];
            let mut p2 = vec![0.0f64];
            for &y in &series {
                p1.push(p1.last().copied().unwrap() + y);
                p2.push(p2.last().copied().unwrap() + y * y);
            }
            for off in 0..=series.len() - n {
                let v = &series[off..off + n];
                for eps in [0.1, 40.0, 1e6] {
                    let exact = qf.fit(v).unwrap();
                    let got = qf
                        .fit_within_sliding(v, eps, (p1[off], p1[off + n]), (p2[off], p2[off + n]))
                        .unwrap();
                    match got {
                        Some(fit) => {
                            accepted += 1;
                            assert_eq!(fit.distance.to_bits(), exact.distance.to_bits());
                            assert_eq!(fit.transform.a.to_bits(), exact.transform.a.to_bits());
                            assert_eq!(fit.transform.b.to_bits(), exact.transform.b.to_bits());
                        }
                        None => {
                            screened += 1;
                            assert!(
                                exact.distance > eps,
                                "sliding screen dropped a true match: d={} eps={eps} off={off}",
                                exact.distance
                            );
                        }
                    }
                }
            }
        }
        assert!(screened > 100, "sliding screen never fires ({screened})");
        assert!(
            accepted > 100,
            "sliding screen rejects everything ({accepted})"
        );
    }

    #[test]
    fn fit_within_sliding_on_degenerate_and_mismatched_input() {
        let u = vec![5.0; 16];
        let qf = QueryFit::new(&u);
        assert!(qf.is_degenerate());
        let v: Vec<f64> = (0..16).map(f64::from).collect();
        let p1: Vec<f64> = std::iter::once(0.0)
            .chain(v.iter().scan(0.0, |s, y| {
                *s += y;
                Some(*s)
            }))
            .collect();
        let p2: Vec<f64> = std::iter::once(0.0)
            .chain(v.iter().scan(0.0, |s, y| {
                *s += y * y;
                Some(*s)
            }))
            .collect();
        let exact = qf.fit(&v).unwrap();
        // Generous epsilon: accepted, bit-identical, shift-only.
        let fit = qf
            .fit_within_sliding(&v, 1e9, (p1[0], p1[16]), (p2[0], p2[16]))
            .unwrap()
            .unwrap();
        assert_eq!(fit.transform.a, 0.0);
        assert_eq!(fit.distance.to_bits(), exact.distance.to_bits());
        // Tiny epsilon: screened (the window is far from constant).
        assert!(qf
            .fit_within_sliding(&v, 1e-6, (p1[0], p1[16]), (p2[0], p2[16]))
            .unwrap()
            .is_none());
        // Length mismatch is the typed error.
        assert!(qf
            .fit_within_sliding(&v[..8], 1.0, (0.0, 0.0), (0.0, 0.0))
            .is_err());
    }

    #[test]
    fn fit_within_on_degenerate_query() {
        let u = [4.0; 6];
        let qf = QueryFit::new(&u);
        assert!(qf.is_degenerate());
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let exact = optimal_scale_shift(&u, &v).unwrap();
        // Tight epsilon: certainly screened.
        assert!(qf.fit_within(&v, 1e-3).unwrap().is_none());
        // Generous epsilon: bit-identical degenerate fit.
        let fit = qf.fit_within(&v, 100.0).unwrap().unwrap();
        assert_eq!(fit.distance.to_bits(), exact.distance.to_bits());
        assert_eq!(fit.transform.a, 0.0);
        assert_eq!(fit.transform.b.to_bits(), exact.transform.b.to_bits());
    }

    #[test]
    fn fit_within_mean_dominated_cancellation_stays_sound() {
        // ‖v‖² ≈ n·v̄² here, so the centred moment ‖vc‖² loses most of its
        // bits to cancellation — the screen slack must scale with the
        // *uncentered* magnitudes or it would mis-certify these.
        let mut rng = tsss_rand::Rng::seed_from_u64(0xCAFE_D00D);
        let u = rng.f64_vec(64, -1.0, 1.0);
        let qf = QueryFit::new(&u);
        for _ in 0..64 {
            let mut v = vec![1.0e6; 64];
            for y in &mut v {
                *y += rng.f64_range(-1e-3, 1e-3);
            }
            let exact = qf.fit(&v).unwrap();
            for eps in [exact.distance * 0.99, exact.distance * 1.01] {
                match qf.fit_within(&v, eps).unwrap() {
                    Some(fit) => assert_eq!(fit.distance.to_bits(), exact.distance.to_bits()),
                    None => assert!(exact.distance > eps),
                }
            }
        }
    }

    #[test]
    fn query_fit_empty_and_mismatch() {
        let qf = QueryFit::new(&[]);
        let fit = qf.fit(&[]).unwrap();
        assert_eq!(fit.distance, 0.0);
        assert!(qf.fit_within(&[], 0.0).unwrap().is_some());
        let qf = QueryFit::new(&[1.0, 2.0]);
        assert!(qf.fit(&[1.0]).is_err());
        assert!(qf.fit_within(&[1.0], 1.0).is_err());
        assert_eq!(qf.query(), &[1.0, 2.0]);
    }

    #[test]
    fn similarity_is_not_symmetric_in_general() {
        // F maps u onto v; the reverse direction has its own optimum. The
        // *distances* differ in general (the relation ~ε is directional).
        let u = [0.0, 0.0, 0.0, 1.0];
        let v = [5.0, 5.0, 5.0, 100.0];
        let duv = min_scale_shift_distance(&u, &v).unwrap();
        let dvu = min_scale_shift_distance(&v, &u).unwrap();
        assert!(duv < 1e-9); // u scales up onto v exactly
        assert!(dvu < 1e-9); // and v scales down onto u exactly (a = 1/95 ≠ 0)
                             // An asymmetric example: u constant, v not.
        let u = [1.0, 1.0, 1.0];
        let v = [0.0, 1.0, 2.0];
        let duv = min_scale_shift_distance(&u, &v).unwrap();
        let dvu = min_scale_shift_distance(&v, &u).unwrap();
        assert!(duv > 1.0); // constant cannot reach a sloped sequence
        assert!(dvu < 1e-9); // sloped flattens onto constant with a = 0
    }
}
