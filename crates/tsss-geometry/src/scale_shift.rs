//! The scale-shift transformation `F_{a,b}` and the closed-form optimal fit
//! of paper §3 and §5.2.
//!
//! Definition 1 of the paper: `u ~ε v` iff there exist `a, b ∈ ℝ` with
//! `‖F_{a,b}(u) − v‖₂ ≤ ε`, where `F_{a,b}(u) = a·u + b·N`. The minimum of
//! `‖a·u + b·N − v‖` over all `(a, b)` is a tiny least-squares problem whose
//! solution the paper derives geometrically (§5.2):
//!
//! ```text
//! a = (T_se(u) · T_se(v)) / ‖T_se(u)‖²           (in the SE-Plane)
//! b = ((v − a·u) · N) / ‖N‖²                      (back in ℝⁿ)
//! ```
//!
//! [`optimal_scale_shift`] computes `(a, b)` and the attained distance in one
//! pass (O(n), no allocation), and [`min_scale_shift_distance`] returns just
//! the distance — it equals `LLD(Line_sa(u), Line_sh(v))` by Theorem 1, a
//! fact the property tests exercise.

use crate::vector::{dot, mean, norm_sq};
use crate::DimensionMismatch;

/// A concrete scale-shift transformation `F_{a,b}(x) = a·x + b·N`.
///
/// This is the object reported to the user for each match: *how* the query
/// maps onto the matched subsequence (paper §6, post-processing step).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleShift {
    /// Scaling factor `a`.
    pub a: f64,
    /// Shifting offset `b`.
    pub b: f64,
}

impl ScaleShift {
    /// The identity transformation (`a = 1`, `b = 0`).
    pub const IDENTITY: Self = Self { a: 1.0, b: 0.0 };

    /// Applies `F_{a,b}` to `x`, returning `a·x + b·N`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|v| self.a * v + self.b).collect()
    }

    /// Applies `F_{a,b}` in place.
    pub fn apply_in_place(&self, x: &mut [f64]) {
        for v in x {
            *v = self.a * *v + self.b;
        }
    }

    /// The inverse transformation, if `a ≠ 0`: `F⁻¹(y) = (y − b·N)/a`.
    ///
    /// Returns `None` for the non-invertible `a = 0` case (which maps every
    /// sequence to the constant `b·N`).
    pub fn inverse(&self) -> Option<Self> {
        // analyze::allow(float-eq): exact-zero test — `a` is non-invertible only when literally 0.0; any tiny non-zero scale still divides to a finite inverse.
        if self.a == 0.0 {
            None
        } else {
            Some(Self {
                a: 1.0 / self.a,
                b: -self.b / self.a,
            })
        }
    }

    /// Composition: `(self ∘ other)(x) = self.apply(other.apply(x))`.
    ///
    /// Scale-shift transformations form a monoid under composition (a group
    /// when `a ≠ 0`); the Figure 1 example of the paper (B scaled by 0.5 then
    /// shifted by 20 gives C) is a composition check in the tests.
    pub fn compose(&self, other: &Self) -> Self {
        Self {
            a: self.a * other.a,
            b: self.a * other.b + self.b,
        }
    }
}

/// Result of fitting the best scale-shift transformation of one sequence
/// onto another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleShiftFit {
    /// The optimal transformation.
    pub transform: ScaleShift,
    /// The attained distance `‖F_{a,b}(u) − v‖₂` — by Theorem 1 this equals
    /// `LLD(Line_sa(u), Line_sh(v))`, the minimum possible dissimilarity.
    pub distance: f64,
}

/// Relative variance threshold below which a sequence counts as constant for
/// fitting purposes (see [`is_numerically_constant`]).
const CONSTANT_REL_TOL: f64 = 1e-24;

/// True when `u` is numerically constant — zero fluctuation relative to its
/// magnitude, so its SE-transformation vanishes and its SE-line degenerates
/// to the origin.
///
/// This is *the* degeneracy test [`optimal_scale_shift`] applies, exposed so
/// search layers can branch to a shift-only query plan and stay consistent
/// with verification.
pub fn is_numerically_constant(u: &[f64]) -> bool {
    if u.is_empty() {
        return true;
    }
    let n = u.len() as f64;
    let mu = mean(u);
    let uu = norm_sq(u);
    let ucuc = (uu - n * mu * mu).max(0.0);
    ucuc <= CONSTANT_REL_TOL * uu.max(1e-300)
}

/// Computes the optimal `(a, b)` minimising `‖a·u + b·N − v‖₂` together with
/// the attained distance, in a single O(n) pass (paper §5.2).
///
/// Derivation (all in terms of means and centred dot products): writing
/// `ū = mean(u)`, `uc = u − ū·N` (the SE-transformation of `u`, see
/// [`crate::se`]) and likewise for `v`,
///
/// ```text
/// a = (uc · vc) / ‖uc‖²,    b = v̄ − a·ū,
/// distance² = ‖vc‖² − a²·‖uc‖².
/// ```
///
/// Degenerate case: when `u` is (numerically) constant, its SE-transformation
/// vanishes and *any* `a` is optimal; we canonically return `a = 0`,
/// `b = mean(v)`, with distance `‖vc‖`.
///
/// ```
/// use tsss_geometry::scale_shift::optimal_scale_shift;
/// // Sequences A and B of the paper's Figure 1: B = 2·A exactly.
/// let a = [5.0, 10.0, 6.0, 12.0, 4.0];
/// let b = [10.0, 20.0, 12.0, 24.0, 8.0];
/// let fit = optimal_scale_shift(&a, &b).unwrap();
/// assert!((fit.transform.a - 2.0).abs() < 1e-12);
/// assert!(fit.transform.b.abs() < 1e-9);
/// assert!(fit.distance < 1e-6);
/// ```
///
/// # Errors
/// Returns [`DimensionMismatch`] when the sequences differ in length.
pub fn optimal_scale_shift(u: &[f64], v: &[f64]) -> Result<ScaleShiftFit, DimensionMismatch> {
    if u.len() != v.len() {
        return Err(DimensionMismatch {
            left: u.len(),
            right: v.len(),
        });
    }
    let n = u.len() as f64;
    if u.is_empty() {
        return Ok(ScaleShiftFit {
            transform: ScaleShift::IDENTITY,
            distance: 0.0,
        });
    }
    let mu = mean(u);
    let mv = mean(v);
    // Centred second moments, computed without materialising uc/vc.
    // uc·vc = u·v − n·ū·v̄ ; ‖uc‖² = ‖u‖² − n·ū².
    let uv = dot(u, v);
    let uu = norm_sq(u);
    let ucvc = uv - n * mu * mv;
    let ucuc = (uu - n * mu * mu).max(0.0);

    // Relative degeneracy test: a sequence whose variance is ~0 compared to
    // its magnitude is "constant" for fitting purposes (the same test
    // `is_numerically_constant` applies).
    if ucuc <= CONSTANT_REL_TOL * uu.max(1e-300) {
        let resid: f64 = v.iter().map(|y| (y - mv) * (y - mv)).sum();
        return Ok(ScaleShiftFit {
            transform: ScaleShift { a: 0.0, b: mv },
            distance: resid.sqrt(),
        });
    }
    let a = ucvc / ucuc;
    let b = mv - a * mu;
    // The algebraic identity distance² = ‖vc‖² − a²·‖uc‖² suffers
    // catastrophic cancellation for near-exact matches (error ~ √(ε_mach) of
    // the signal energy), so evaluate the residual explicitly instead — one
    // extra O(n) pass, accurate to machine precision.
    let dist_sq: f64 = u
        .iter()
        .zip(v)
        .map(|(x, y)| {
            let r = a * x + b - y;
            r * r
        })
        .sum();
    Ok(ScaleShiftFit {
        transform: ScaleShift { a, b },
        distance: dist_sq.sqrt(),
    })
}

/// The minimum dissimilarity `min_{a,b} ‖a·u + b·N − v‖₂`.
///
/// By Theorem 1 / Corollary 1 this is *the* distance of the paper's
/// similarity model: `u ~ε v` iff `min_scale_shift_distance(u, v) ≤ ε`.
///
/// # Errors
/// Returns [`DimensionMismatch`] when the sequences differ in length.
pub fn min_scale_shift_distance(u: &[f64], v: &[f64]) -> Result<f64, DimensionMismatch> {
    optimal_scale_shift(u, v).map(|fit| fit.distance)
}

/// Convenience predicate for Definition 1: `u ~ε v`.
///
/// # Errors
/// Returns [`DimensionMismatch`] when the sequences differ in length.
pub fn similar(u: &[f64], v: &[f64], epsilon: f64) -> Result<bool, DimensionMismatch> {
    Ok(min_scale_shift_distance(u, v)? <= epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::{lld, Line};
    use crate::vector::dist;

    const A: [f64; 5] = [5.0, 10.0, 6.0, 12.0, 4.0];
    const B: [f64; 5] = [10.0, 20.0, 12.0, 24.0, 8.0];
    const C: [f64; 5] = [25.0, 30.0, 26.0, 32.0, 24.0];

    #[test]
    fn apply_matches_definition() {
        let f = ScaleShift { a: 2.0, b: 0.0 };
        assert_eq!(f.apply(&A), B.to_vec());
        let g = ScaleShift { a: 1.0, b: 20.0 };
        assert_eq!(g.apply(&A), C.to_vec());
    }

    #[test]
    fn paper_figure1_composition_b_to_c() {
        // "if B is scaled down by 0.5 and then shifted up by 20 units, it
        // becomes C" — shift ∘ scale.
        let scale = ScaleShift { a: 0.5, b: 0.0 };
        let shift = ScaleShift { a: 1.0, b: 20.0 };
        let f = shift.compose(&scale);
        assert_eq!(f.apply(&B), C.to_vec());
    }

    #[test]
    fn apply_in_place_agrees_with_apply() {
        let f = ScaleShift { a: -1.5, b: 3.0 };
        let mut x = A.to_vec();
        f.apply_in_place(&mut x);
        assert_eq!(x, f.apply(&A));
    }

    #[test]
    fn inverse_roundtrips() {
        let f = ScaleShift { a: 2.5, b: -7.0 };
        let inv = f.inverse().unwrap();
        let x = A.to_vec();
        let back = inv.apply(&f.apply(&x));
        for (orig, b) in x.iter().zip(&back) {
            assert!((orig - b).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_of_zero_scale_is_none() {
        assert!(ScaleShift { a: 0.0, b: 1.0 }.inverse().is_none());
    }

    #[test]
    fn compose_is_function_composition() {
        let f = ScaleShift { a: 2.0, b: 1.0 };
        let g = ScaleShift { a: -3.0, b: 4.0 };
        let fg = f.compose(&g);
        let x = [1.0, 5.0, -2.0];
        assert_eq!(fg.apply(&x), f.apply(&g.apply(&x)));
    }

    #[test]
    fn optimal_fit_recovers_exact_transformations() {
        // A → B is exactly a = 2, b = 0.
        let fit = optimal_scale_shift(&A, &B).unwrap();
        assert!((fit.transform.a - 2.0).abs() < 1e-12);
        assert!(fit.transform.b.abs() < 1e-10);
        assert!(fit.distance < 1e-6);

        // A → C is exactly a = 1, b = 20.
        let fit = optimal_scale_shift(&A, &C).unwrap();
        assert!((fit.transform.a - 1.0).abs() < 1e-12);
        assert!((fit.transform.b - 20.0).abs() < 1e-10);
        assert!(fit.distance < 1e-6);

        // B → C is exactly a = 0.5, b = 20.
        let fit = optimal_scale_shift(&B, &C).unwrap();
        assert!((fit.transform.a - 0.5).abs() < 1e-12);
        assert!((fit.transform.b - 20.0).abs() < 1e-10);
        assert!(fit.distance < 1e-6);
    }

    #[test]
    fn fit_distance_is_achieved_by_the_transform() {
        let u = [1.0, -2.0, 3.5, 0.0, 7.0];
        let v = [2.0, 2.0, -1.0, 4.0, 0.5];
        let fit = optimal_scale_shift(&u, &v).unwrap();
        let transformed = fit.transform.apply(&u);
        assert!((dist(&transformed, &v) - fit.distance).abs() < 1e-10);
    }

    #[test]
    fn fit_distance_equals_lld_theorem1() {
        let u = [1.0, -2.0, 3.5, 0.0, 7.0];
        let v = [2.0, 2.0, -1.0, 4.0, 0.5];
        let fit = optimal_scale_shift(&u, &v).unwrap();
        let geometric = lld(&Line::scaling(&u), &Line::shifting(&v));
        assert!((fit.distance - geometric).abs() < 1e-9);
    }

    #[test]
    fn fit_is_at_least_as_good_as_random_transforms() {
        let u = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let v = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0];
        let fit = optimal_scale_shift(&u, &v).unwrap();
        for &(a, b) in &[
            (0.0, 0.0),
            (1.0, 0.0),
            (0.5, 3.0),
            (-2.0, 10.0),
            (3.3, -4.4),
        ] {
            let d = dist(&ScaleShift { a, b }.apply(&u), &v);
            assert!(fit.distance <= d + 1e-10, "({a},{b}) beat the optimum");
        }
    }

    #[test]
    fn constant_query_degenerates_to_mean_shift() {
        let u = [4.0; 6];
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let fit = optimal_scale_shift(&u, &v).unwrap();
        assert_eq!(fit.transform.a, 0.0);
        assert!((fit.transform.b - 3.5).abs() < 1e-12);
        // Distance = norm of centred v.
        let expect = v.iter().map(|x| (x - 3.5) * (x - 3.5)).sum::<f64>().sqrt();
        assert!((fit.distance - expect).abs() < 1e-10);
    }

    #[test]
    fn empty_sequences_are_trivially_similar() {
        let fit = optimal_scale_shift(&[], &[]).unwrap();
        assert_eq!(fit.distance, 0.0);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(optimal_scale_shift(&[1.0], &[1.0, 2.0]).is_err());
        assert!(min_scale_shift_distance(&[1.0], &[1.0, 2.0]).is_err());
        assert!(similar(&[1.0], &[1.0, 2.0], 1.0).is_err());
    }

    #[test]
    fn similar_predicate_thresholds_correctly() {
        assert!(similar(&A, &B, 1e-9).unwrap());
        let far = [0.0, 100.0, -30.0, 55.0, 2.0];
        let d = min_scale_shift_distance(&A, &far).unwrap();
        assert!(!similar(&A, &far, d - 1e-6).unwrap());
        assert!(similar(&A, &far, d + 1e-6).unwrap());
    }

    #[test]
    fn similarity_is_not_symmetric_in_general() {
        // F maps u onto v; the reverse direction has its own optimum. The
        // *distances* differ in general (the relation ~ε is directional).
        let u = [0.0, 0.0, 0.0, 1.0];
        let v = [5.0, 5.0, 5.0, 100.0];
        let duv = min_scale_shift_distance(&u, &v).unwrap();
        let dvu = min_scale_shift_distance(&v, &u).unwrap();
        assert!(duv < 1e-9); // u scales up onto v exactly
        assert!(dvu < 1e-9); // and v scales down onto u exactly (a = 1/95 ≠ 0)
                             // An asymmetric example: u constant, v not.
        let u = [1.0, 1.0, 1.0];
        let v = [0.0, 1.0, 2.0];
        let duv = min_scale_shift_distance(&u, &v).unwrap();
        let dvu = min_scale_shift_distance(&v, &u).unwrap();
        assert!(duv > 1.0); // constant cannot reach a sloped sequence
        assert!(dvu < 1e-9); // sloped flattens onto constant with a = 0
    }
}
