//! The Shift-Eliminated Transformation (SE-Transformation) of paper §5.1.
//!
//! Definition 2 of the paper:
//!
//! ```text
//! T_se(p) = p − ((p · N) / ‖N‖²) · N
//! ```
//!
//! Since `N = (1, …, 1)`, `(p·N)/‖N‖²` is just the arithmetic mean of `p`, so
//! the SE-transformation is **mean removal** — the projection of `p` onto the
//! SE-Plane, the (n−1)-dimensional hyperplane through the origin orthogonal
//! to `N`. (This is the ancestor of today's z-normalisation: z-normalisation
//! is the SE-transformation followed by division by the norm, which
//! additionally quotients out the scaling line.)
//!
//! Key properties (paper §5.1, validated by the property tests):
//!
//! 1. `T_se` is linear;
//! 2. every shifting line collapses to the single point `T_se(v)`;
//! 3. every scaling line maps to the **SE-line** `{ t·T_se(u) }` lying in the
//!    SE-Plane;
//! 4. the image is orthogonal to `N` (the SE-Plane has dimension n−1).

use crate::line::Line;
use crate::vector::{mean, norm_sq};

/// Applies the SE-transformation, returning `p − mean(p)·N` as a new vector.
///
/// ```
/// use tsss_geometry::se::se_transform;
/// // Shifted copies collapse to the same SE point (paper §5.1, property 2).
/// let v = [2.0, 8.0, 5.0];
/// let shifted = [102.0, 108.0, 105.0];
/// assert_eq!(se_transform(&v), se_transform(&shifted));
/// ```
pub fn se_transform(p: &[f64]) -> Vec<f64> {
    let m = mean(p);
    p.iter().map(|x| x - m).collect()
}

/// Applies the SE-transformation in place.
pub fn se_transform_in_place(p: &mut [f64]) {
    let m = mean(p);
    for x in p {
        *x -= m;
    }
}

/// Writes the SE-transformation of `p` into `out` (no allocation).
///
/// # Panics
/// Debug-asserts `p.len() == out.len()`.
pub fn se_transform_into(p: &[f64], out: &mut [f64]) {
    debug_assert_eq!(p.len(), out.len());
    let m = mean(p);
    for (o, x) in out.iter_mut().zip(p) {
        *o = x - m;
    }
}

/// The norm of the SE-transformation of `p` — the sequence's "fluctuation
/// energy" once the level is removed — computed without allocating.
///
/// `se_norm(p)² = ‖p‖² − n·mean(p)²`.
pub fn se_norm(p: &[f64]) -> f64 {
    let n = p.len() as f64;
    let m = mean(p);
    (norm_sq(p) - n * m * m).max(0.0).sqrt()
}

/// The **SE-line** of `u`: the image `{ t·T_se(u) }` of the scaling line of
/// `u` under the SE-transformation (paper §5.1, property 3).
///
/// This is the line the search algorithm probes against the indexed feature
/// points (Theorem 2).
pub fn se_line(u: &[f64]) -> Line {
    Line {
        point: vec![0.0; u.len()],
        dir: se_transform(u),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::{lld, pld};
    use crate::vector::{approx_eq, dot};

    #[test]
    fn se_transform_removes_the_mean() {
        let p = [5.0, 10.0, 6.0, 12.0, 4.0]; // mean 7.4
        let t = se_transform(&p);
        assert!(approx_eq(&t, &[-2.4, 2.6, -1.4, 4.6, -3.4], 1e-12));
        assert!(mean(&t).abs() < 1e-12);
    }

    #[test]
    fn se_transform_is_idempotent() {
        let p = [1.0, -3.0, 2.5, 0.0];
        let once = se_transform(&p);
        let twice = se_transform(&once);
        assert!(approx_eq(&once, &twice, 1e-12));
    }

    #[test]
    fn se_transform_is_linear() {
        let u = [1.0, 2.0, 3.0];
        let v = [-4.0, 0.0, 4.0];
        let sum: Vec<f64> = u.iter().zip(&v).map(|(a, b)| a + b).collect();
        let lhs = se_transform(&sum);
        let rhs: Vec<f64> = se_transform(&u)
            .iter()
            .zip(se_transform(&v))
            .map(|(a, b)| a + b)
            .collect();
        assert!(approx_eq(&lhs, &rhs, 1e-12));

        let scaled: Vec<f64> = u.iter().map(|a| 3.5 * a).collect();
        let lhs = se_transform(&scaled);
        let rhs: Vec<f64> = se_transform(&u).iter().map(|a| 3.5 * a).collect();
        assert!(approx_eq(&lhs, &rhs, 1e-12));
    }

    #[test]
    fn shifting_line_collapses_to_a_point() {
        // Property 2: T_se(v + t·N) = T_se(v) for every t.
        let v = [2.0, 8.0, 5.0, 1.0];
        let base = se_transform(&v);
        for t in [-100.0, -1.0, 0.0, 0.5, 3.0, 1e6] {
            let shifted: Vec<f64> = v.iter().map(|x| x + t).collect();
            assert!(approx_eq(&se_transform(&shifted), &base, 1e-6));
        }
    }

    #[test]
    fn image_is_orthogonal_to_n() {
        // Property 4: T_se(p) · N = 0.
        let p = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let n = vec![1.0; p.len()];
        assert!(dot(&se_transform(&p), &n).abs() < 1e-12);
    }

    #[test]
    fn se_norm_matches_explicit_norm() {
        let p = [7.0, -2.0, 4.0, 4.0, 11.0];
        let explicit = crate::vector::norm(&se_transform(&p));
        assert!((se_norm(&p) - explicit).abs() < 1e-12);
    }

    #[test]
    fn se_norm_of_constant_is_zero() {
        assert!(se_norm(&[5.0; 8]) < 1e-12);
    }

    #[test]
    fn se_transform_into_and_in_place_agree() {
        let p = [1.0, 2.0, 4.0, 8.0];
        let by_alloc = se_transform(&p);
        let mut buf = [0.0; 4];
        se_transform_into(&p, &mut buf);
        assert!(approx_eq(&buf, &by_alloc, 0.0));
        let mut q = p;
        se_transform_in_place(&mut q);
        assert!(approx_eq(&q, &by_alloc, 0.0));
    }

    #[test]
    fn theorem2_pld_on_se_plane_equals_lld_in_original_space() {
        // PLD(T_se(v), SE-line(u)) == LLD(Line_sa(u), Line_sh(v)).
        let u = [1.0, -2.0, 3.5, 0.0, 7.0];
        let v = [2.0, 2.0, -1.0, 4.0, 0.5];
        let lhs = pld(&se_transform(&v), &se_line(&u));
        let rhs = lld(&Line::scaling(&u), &Line::shifting(&v));
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    #[test]
    fn se_line_is_degenerate_for_constant_sequences() {
        assert!(se_line(&[3.0; 5]).is_degenerate());
        assert!(!se_line(&[3.0, 4.0, 3.0, 4.0, 3.0]).is_degenerate());
    }
}
