//! Line–MBR penetration testing (paper §6.1 and §7).
//!
//! An MBR is *penetrated* by a line `L(t) = p + t·d` if some `L(t')` is
//! contained in the box. Theorem 3 of the paper turns this into the pruning
//! rule of the whole search: if the query's SE-line does not penetrate a
//! node's ε-MBR, the node cannot hold any qualifying point.
//!
//! [`line_penetrates_mbr`] implements the **Entering/Exiting Points** method
//! the paper borrows from ray tracing — the slab method generalised to
//! hyper-rectangles and to full lines (`t ∈ ℝ`, not just rays): every
//! dimension restricts the feasible parameter range to a slab interval, and
//! the box is penetrated iff the intersection of all the intervals is
//! non-empty.
//!
//! [`PenetrationMethod`] selects between the plain slab test (paper's
//! experiment set 2) and the inner/outer bounding-sphere heuristic wrapped
//! around it (set 3, see [`crate::sphere`]).

// analyze::allow-file(index): loops run over `0..line.dim()` with the line/MBR dimension equality `debug_assert`ed at entry and enforced by the callers via the checked constructors.

use crate::line::Line;
use crate::mbr::Mbr;
use crate::sphere::Sphere;

/// Which penetration-checking strategy the tree search uses. Mirrors the
/// paper's experiment sets 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PenetrationMethod {
    /// Entering/Exiting Points (slab) test only — experiment **set 2**.
    #[default]
    EnteringExiting,
    /// Inner/outer bounding-sphere pre-tests with a slab-test fallback —
    /// experiment **set 3**. The paper finds this *slower* in practice
    /// because R*-tree boxes have long diagonals and small volumes.
    BoundingSpheres,
}

/// Statistics describing how the sphere heuristic resolved penetration
/// queries. Used by the `ablation_spheres` bench to reproduce the paper's
/// §7 explanation of why set 3 loses to set 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SphereStats {
    /// Outer sphere missed ⇒ box proven un-penetrated without a slab test.
    pub outer_reject: u64,
    /// Inner sphere hit ⇒ box proven penetrated without a slab test.
    pub inner_accept: u64,
    /// Between the spheres: the slab test had to run anyway (pure overhead).
    pub fallback: u64,
    /// Of the fallbacks, how many the slab test then accepted.
    pub fallback_hit: u64,
}

impl SphereStats {
    /// Total number of penetration queries recorded.
    pub fn total(&self) -> u64 {
        self.outer_reject + self.inner_accept + self.fallback
    }

    /// Fraction of queries the spheres could not decide (ran the fallback).
    pub fn fallback_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.fallback as f64 / t as f64
        }
    }

    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &SphereStats) {
        self.outer_reject += other.outer_reject;
        self.inner_accept += other.inner_accept;
        self.fallback += other.fallback;
        self.fallback_hit += other.fallback_hit;
    }
}

/// The feasible parameter interval `[t_lo, t_hi]` for which `L(t)` lies in
/// `mbr`, or `None` when the line misses the box.
///
/// This is the Entering/Exiting Points computation itself: `t_lo` is the
/// entering parameter and `t_hi` the exiting parameter. Boundary contact
/// counts as penetration (consistent with the closed boxes of paper §6.1).
pub fn line_mbr_interval(line: &Line, mbr: &Mbr) -> Option<(f64, f64)> {
    debug_assert_eq!(line.dim(), mbr.dim());
    let mut t_lo = f64::NEG_INFINITY;
    let mut t_hi = f64::INFINITY;
    for i in 0..line.dim() {
        let p = line.point[i];
        let d = line.dir[i];
        let (lo, hi) = (mbr.low()[i], mbr.high()[i]);
        // analyze::allow(float-eq): exact-zero test — only a direction component that is literally 0.0 makes the slab equations degenerate (division by it would yield ±inf/NaN); tiny non-zero components divide fine.
        if d == 0.0 {
            // The line is constant in this dimension: either always inside
            // the slab or always outside.
            if p < lo || p > hi {
                return None;
            }
            continue;
        }
        let mut t1 = (lo - p) / d;
        let mut t2 = (hi - p) / d;
        if t1 > t2 {
            std::mem::swap(&mut t1, &mut t2);
        }
        if t1 > t_lo {
            t_lo = t1;
        }
        if t2 < t_hi {
            t_hi = t2;
        }
        if t_lo > t_hi {
            return None;
        }
    }
    Some((t_lo, t_hi))
}

/// True when the line penetrates the box (Entering/Exiting Points method).
pub fn line_penetrates_mbr(line: &Line, mbr: &Mbr) -> bool {
    line_mbr_interval(line, mbr).is_some()
}

/// Penetration test with the selected strategy, recording sphere statistics.
///
/// With [`PenetrationMethod::BoundingSpheres`] the decision procedure is the
/// paper's §7 heuristic:
/// 1. if the line misses the **outer** sphere (circumscribing the box), the
///    box is certainly missed;
/// 2. else if it hits the **inner** sphere (inscribed in the box), the box is
///    certainly hit;
/// 3. otherwise fall back to the slab test.
pub fn penetrates(
    line: &Line,
    mbr: &Mbr,
    method: PenetrationMethod,
    stats: &mut SphereStats,
) -> bool {
    match method {
        PenetrationMethod::EnteringExiting => line_penetrates_mbr(line, mbr),
        PenetrationMethod::BoundingSpheres => {
            let outer = Sphere::outer(mbr);
            if !outer.penetrated_by(line) {
                stats.outer_reject += 1;
                return false;
            }
            let inner = Sphere::inner(mbr);
            if inner.penetrated_by(line) {
                stats.inner_accept += 1;
                return true;
            }
            stats.fallback += 1;
            let hit = line_penetrates_mbr(line, mbr);
            if hit {
                stats.fallback_hit += 1;
            }
            hit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbr2(low: [f64; 2], high: [f64; 2]) -> Mbr {
        Mbr::new(low.to_vec(), high.to_vec()).unwrap()
    }

    #[test]
    fn diagonal_line_penetrates_unit_box() {
        let l = Line::new(vec![-1.0, -1.0], vec![1.0, 1.0]).unwrap();
        let m = mbr2([0.0, 0.0], [1.0, 1.0]);
        let (t0, t1) = line_mbr_interval(&l, &m).unwrap();
        assert!((t0 - 1.0).abs() < 1e-12);
        assert!((t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn line_missing_the_box_is_rejected() {
        // Horizontal line at y = 2 above the unit box.
        let l = Line::new(vec![0.0, 2.0], vec![1.0, 0.0]).unwrap();
        assert!(!line_penetrates_mbr(&l, &mbr2([0.0, 0.0], [1.0, 1.0])));
    }

    #[test]
    fn negative_parameters_count_full_line_not_ray() {
        // Box entirely "behind" the base point: a ray would miss, the line
        // must hit.
        let l = Line::new(vec![10.0, 10.0], vec![1.0, 1.0]).unwrap();
        let m = mbr2([0.0, 0.0], [1.0, 1.0]);
        let (t0, t1) = line_mbr_interval(&l, &m).unwrap();
        assert!(t0 < 0.0 && t1 < 0.0);
    }

    #[test]
    fn zero_direction_component_inside_slab() {
        // Vertical line x = 0.5 crosses the box.
        let l = Line::new(vec![0.5, -5.0], vec![0.0, 1.0]).unwrap();
        assert!(line_penetrates_mbr(&l, &mbr2([0.0, 0.0], [1.0, 1.0])));
        // Vertical line x = 2 misses it.
        let l = Line::new(vec![2.0, -5.0], vec![0.0, 1.0]).unwrap();
        assert!(!line_penetrates_mbr(&l, &mbr2([0.0, 0.0], [1.0, 1.0])));
    }

    #[test]
    fn fully_degenerate_line_is_point_containment() {
        let inside = Line::new(vec![0.5, 0.5], vec![0.0, 0.0]).unwrap();
        let outside = Line::new(vec![2.0, 0.5], vec![0.0, 0.0]).unwrap();
        let m = mbr2([0.0, 0.0], [1.0, 1.0]);
        assert!(line_penetrates_mbr(&inside, &m));
        assert!(!line_penetrates_mbr(&outside, &m));
    }

    #[test]
    fn boundary_tangency_counts_as_penetration() {
        // Line along the box edge y = 1.
        let l = Line::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap();
        assert!(line_penetrates_mbr(&l, &mbr2([0.0, 0.0], [1.0, 1.0])));
        // Line touching only the corner (1,1).
        let l = Line::new(vec![0.0, 2.0], vec![1.0, -1.0]).unwrap();
        assert!(line_penetrates_mbr(&l, &mbr2([0.0, 0.0], [1.0, 1.0])));
    }

    #[test]
    fn interval_points_lie_in_the_box() {
        let l = Line::new(vec![-3.0, 0.2, 1.0], vec![2.0, 0.3, -0.5]).unwrap();
        let m = Mbr::new(vec![-1.0, 0.0, -1.0], vec![1.0, 1.0, 1.0]).unwrap();
        if let Some((t0, t1)) = line_mbr_interval(&l, &m) {
            let grown = m.enlarged(1e-9);
            assert!(grown.contains_point(&l.at(t0)));
            assert!(grown.contains_point(&l.at(t1)));
            assert!(grown.contains_point(&l.at(0.5 * (t0 + t1))));
        }
    }

    #[test]
    fn epsilon_enlargement_admits_near_misses() {
        // Line at y = 1.2 misses the unit box but hits its 0.25-MBR.
        let l = Line::new(vec![0.0, 1.2], vec![1.0, 0.0]).unwrap();
        let m = mbr2([0.0, 0.0], [1.0, 1.0]);
        assert!(!line_penetrates_mbr(&l, &m));
        assert!(line_penetrates_mbr(&l, &m.enlarged(0.25)));
    }

    #[test]
    fn sphere_method_agrees_with_slab_method() {
        // The bounding-sphere decision procedure is exact (conservative
        // pre-tests + exact fallback), so outcomes must always agree.
        let boxes = [
            mbr2([0.0, 0.0], [1.0, 1.0]),
            mbr2([-3.0, 2.0], [-1.0, 9.0]),
            mbr2([5.0, 5.0], [5.5, 10.0]),
        ];
        let lines = [
            Line::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap(),
            Line::new(vec![0.0, 3.0], vec![1.0, 0.0]).unwrap(),
            Line::new(vec![-10.0, -10.0], vec![0.3, 1.7]).unwrap(),
            Line::new(vec![5.2, 0.0], vec![0.0, 1.0]).unwrap(),
        ];
        let mut stats = SphereStats::default();
        for m in &boxes {
            for l in &lines {
                let slab = penetrates(l, m, PenetrationMethod::EnteringExiting, &mut stats);
                let sph = penetrates(l, m, PenetrationMethod::BoundingSpheres, &mut stats);
                assert_eq!(slab, sph, "disagreement on {m:?} vs {l:?}");
            }
        }
        assert_eq!(stats.total(), (boxes.len() * lines.len()) as u64);
    }

    #[test]
    fn sphere_stats_classify_elongated_boxes_as_fallbacks() {
        // A long skinny box: outer sphere is huge, inner sphere tiny — the
        // regime the paper blames for set 3's poor performance.
        let m = mbr2([0.0, 0.0], [100.0, 0.1]);
        // A line crossing near the box but missing it.
        let l = Line::new(vec![50.0, 5.0], vec![1.0, 0.0]).unwrap();
        let mut stats = SphereStats::default();
        let hit = penetrates(&l, &m, PenetrationMethod::BoundingSpheres, &mut stats);
        assert!(!hit);
        assert_eq!(stats.fallback, 1, "spheres could not decide: {stats:?}");
    }

    #[test]
    fn sphere_stats_merge_adds_counters() {
        let mut a = SphereStats {
            outer_reject: 1,
            inner_accept: 2,
            fallback: 3,
            fallback_hit: 1,
        };
        let b = SphereStats {
            outer_reject: 10,
            inner_accept: 0,
            fallback: 1,
            fallback_hit: 0,
        };
        a.merge(&b);
        assert_eq!(a.total(), 17);
        assert!((a.fallback_rate() - 4.0 / 17.0).abs() < 1e-12);
    }
}
