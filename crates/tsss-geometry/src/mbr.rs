//! Minimum bounding hyper-rectangles (MBRs) and their ε-enlargement
//! (paper §6.1).
//!
//! An MBR is defined by the two endpoints `L` and `H` of its major diagonal
//! with `lᵢ ≤ hᵢ`. The R-tree/R*-tree node entries carry MBRs; the search
//! algorithm prunes a subtree when the query's SE-line does not penetrate the
//! node's **ε-MBR** — the box grown by ε on every side (Theorem 3).
//!
//! Beyond the paper's definitions, this module provides the standard R*-tree
//! goodness metrics (volume, margin, overlap, centre distance) needed by the
//! Beckmann et al. insertion/split algorithms in `tsss-index`.

// analyze::allow-file(index): every loop runs over `0..self.dim()` (or the dim of a just-validated peer), and the `low`/`high` boxes are built with equal lengths by the checked constructors; a mismatch is rejected as `DimensionMismatch` before any indexing.

use crate::DimensionMismatch;

/// A minimum bounding hyper-rectangle `[low, high]` in ℝⁿ.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    low: Box<[f64]>,
    high: Box<[f64]>,
}

impl Mbr {
    /// Creates an MBR from its diagonal endpoints.
    ///
    /// # Errors
    /// [`DimensionMismatch`] when the endpoints differ in length.
    ///
    /// # Panics
    /// Panics if any `low[i] > high[i]` — a reversed box is a logic error in
    /// the index, never a data condition.
    pub fn new(low: Vec<f64>, high: Vec<f64>) -> Result<Self, DimensionMismatch> {
        if low.len() != high.len() {
            return Err(DimensionMismatch {
                left: low.len(),
                right: high.len(),
            });
        }
        assert!(
            low.iter().zip(&high).all(|(l, h)| l <= h),
            "MBR endpoints must satisfy low <= high component-wise"
        );
        Ok(Self {
            low: low.into_boxed_slice(),
            high: high.into_boxed_slice(),
        })
    }

    /// The degenerate MBR covering exactly one point.
    pub fn point(p: &[f64]) -> Self {
        Self {
            low: p.to_vec().into_boxed_slice(),
            high: p.to_vec().into_boxed_slice(),
        }
    }

    /// The smallest MBR covering every point in `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn covering<'a, I: IntoIterator<Item = &'a [f64]>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut mbr = Self::point(first);
        for p in it {
            mbr.extend_point(p);
        }
        Some(mbr)
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.low.len()
    }

    /// Lower diagonal endpoint `L`.
    pub fn low(&self) -> &[f64] {
        &self.low
    }

    /// Upper diagonal endpoint `H`.
    pub fn high(&self) -> &[f64] {
        &self.high
    }

    /// Side length along dimension `i`.
    pub fn extent(&self, i: usize) -> f64 {
        self.high[i] - self.low[i]
    }

    /// True when the box contains the point (paper §6.1: `lᵢ ≤ pᵢ ≤ hᵢ`).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        self.low
            .iter()
            .zip(self.high.iter())
            .zip(p)
            .all(|((l, h), x)| *l <= *x && *x <= *h)
    }

    /// True when this box contains `other` (paper §6.1: `lᵢ ≤ l'ᵢ ∧ h'ᵢ ≤ hᵢ`).
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        debug_assert_eq!(other.dim(), self.dim());
        self.low.iter().zip(other.low.iter()).all(|(l, ol)| l <= ol)
            && self
                .high
                .iter()
                .zip(other.high.iter())
                .all(|(h, oh)| oh <= h)
    }

    /// True when the boxes share at least one point.
    pub fn intersects(&self, other: &Mbr) -> bool {
        debug_assert_eq!(other.dim(), self.dim());
        self.low
            .iter()
            .zip(self.high.iter())
            .zip(other.low.iter().zip(other.high.iter()))
            .all(|((l, h), (ol, oh))| l <= oh && ol <= h)
    }

    /// The **ε-MBR**: this box grown by `eps` on every side (paper §6.1).
    pub fn enlarged(&self, eps: f64) -> Mbr {
        assert!(eps >= 0.0, "epsilon enlargement must be non-negative");
        Mbr {
            low: self.low.iter().map(|l| l - eps).collect(),
            high: self.high.iter().map(|h| h + eps).collect(),
        }
    }

    /// Grows this box (in place) to cover the point `p`.
    pub fn extend_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dim());
        for (i, &x) in p.iter().enumerate() {
            if x < self.low[i] {
                self.low[i] = x;
            }
            if x > self.high[i] {
                self.high[i] = x;
            }
        }
    }

    /// Grows this box (in place) to cover `other`.
    pub fn extend_mbr(&mut self, other: &Mbr) {
        debug_assert_eq!(other.dim(), self.dim());
        for i in 0..self.low.len() {
            if other.low[i] < self.low[i] {
                self.low[i] = other.low[i];
            }
            if other.high[i] > self.high[i] {
                self.high[i] = other.high[i];
            }
        }
    }

    /// The smallest box covering both operands.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut out = self.clone();
        out.extend_mbr(other);
        out
    }

    /// Hyper-volume `Π (hᵢ − lᵢ)`. The "area" criterion of R-tree insertion.
    pub fn volume(&self) -> f64 {
        self.low
            .iter()
            .zip(self.high.iter())
            .map(|(l, h)| h - l)
            .product()
    }

    /// Margin `Σ (hᵢ − lᵢ)` — the perimeter-like criterion the R*-tree split
    /// uses to pick its axis (Beckmann et al. §4.1).
    pub fn margin(&self) -> f64 {
        self.low
            .iter()
            .zip(self.high.iter())
            .map(|(l, h)| h - l)
            .sum()
    }

    /// Volume of the intersection with `other` (0 when disjoint) — the
    /// "overlap" criterion of the R*-tree.
    pub fn overlap(&self, other: &Mbr) -> f64 {
        debug_assert_eq!(other.dim(), self.dim());
        let mut v = 1.0;
        for i in 0..self.low.len() {
            let lo = self.low[i].max(other.low[i]);
            let hi = self.high[i].min(other.high[i]);
            if hi <= lo {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// How much this box's volume would grow to also cover `other`.
    pub fn enlargement_for(&self, other: &Mbr) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Centre point of the box.
    pub fn center(&self) -> Vec<f64> {
        self.low
            .iter()
            .zip(self.high.iter())
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }

    /// Length of the major diagonal `‖H − L‖`.
    ///
    /// The paper's §7 discussion of why the bounding-sphere heuristic fails
    /// rests on R*-tree boxes having *long diagonals but small volume* (the
    /// SR-tree observation \[26\]); [`crate::sphere`] exposes both spheres so
    /// the ablation bench can measure exactly that.
    pub fn diagonal(&self) -> f64 {
        self.low
            .iter()
            .zip(self.high.iter())
            .map(|(l, h)| (h - l) * (h - l))
            .sum::<f64>()
            .sqrt()
    }

    /// Squared Euclidean distance from `p` to the nearest point of the box
    /// (0 when inside). Used by nearest-neighbour search.
    pub fn min_dist_sq_to_point(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let mut d = 0.0;
        for (i, &x) in p.iter().enumerate() {
            let e = if x < self.low[i] {
                self.low[i] - x
            } else if x > self.high[i] {
                x - self.high[i]
            } else {
                0.0
            };
            d += e * e;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Mbr {
        Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap()
    }

    #[test]
    fn new_rejects_mismatched_dims() {
        assert!(Mbr::new(vec![0.0], vec![0.0, 1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "low <= high")]
    fn new_panics_on_reversed_box() {
        let _ = Mbr::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn point_box_has_zero_volume_and_contains_itself() {
        let m = Mbr::point(&[2.0, 3.0]);
        assert_eq!(m.volume(), 0.0);
        assert!(m.contains_point(&[2.0, 3.0]));
        assert!(!m.contains_point(&[2.0, 3.1]));
    }

    #[test]
    fn covering_spans_all_points() {
        let pts: Vec<Vec<f64>> = vec![vec![0.0, 5.0], vec![2.0, 1.0], vec![-1.0, 3.0]];
        let m = Mbr::covering(pts.iter().map(|p| p.as_slice())).unwrap();
        assert_eq!(m.low(), &[-1.0, 1.0]);
        assert_eq!(m.high(), &[2.0, 5.0]);
        for p in &pts {
            assert!(m.contains_point(p));
        }
        assert!(Mbr::covering(std::iter::empty()).is_none());
    }

    #[test]
    fn containment_boundaries_are_inclusive() {
        let m = unit_box();
        assert!(m.contains_point(&[0.0, 1.0]));
        assert!(m.contains_point(&[1.0, 0.0]));
        assert!(!m.contains_point(&[1.0 + 1e-12, 0.5]));
    }

    #[test]
    fn contains_mbr_per_paper_definition() {
        let outer = Mbr::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap();
        let inner = Mbr::new(vec![1.0, 1.0], vec![9.0, 9.0]).unwrap();
        assert!(outer.contains_mbr(&inner));
        assert!(!inner.contains_mbr(&outer));
        assert!(outer.contains_mbr(&outer));
    }

    #[test]
    fn intersects_detects_touching_and_disjoint() {
        let a = unit_box();
        let touching = Mbr::new(vec![1.0, 0.0], vec![2.0, 1.0]).unwrap();
        let disjoint = Mbr::new(vec![1.5, 0.0], vec![2.0, 1.0]).unwrap();
        assert!(a.intersects(&touching));
        assert!(!a.intersects(&disjoint));
    }

    #[test]
    fn epsilon_enlargement_grows_every_side() {
        let m = unit_box().enlarged(0.5);
        assert_eq!(m.low(), &[-0.5, -0.5]);
        assert_eq!(m.high(), &[1.5, 1.5]);
        // eps = 0 is the identity.
        assert_eq!(unit_box().enlarged(0.0), unit_box());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_panics() {
        let _ = unit_box().enlarged(-0.1);
    }

    #[test]
    fn extend_point_grows_minimally() {
        let mut m = unit_box();
        m.extend_point(&[2.0, 0.5]);
        assert_eq!(m.high(), &[2.0, 1.0]);
        assert_eq!(m.low(), &[0.0, 0.0]);
    }

    #[test]
    fn union_covers_both() {
        let a = unit_box();
        let b = Mbr::new(vec![3.0, -1.0], vec![4.0, 0.5]).unwrap();
        let u = a.union(&b);
        assert!(u.contains_mbr(&a) && u.contains_mbr(&b));
        assert_eq!(u.low(), &[0.0, -1.0]);
        assert_eq!(u.high(), &[4.0, 1.0]);
    }

    #[test]
    fn volume_margin_diagonal_hand_case() {
        let m = Mbr::new(vec![0.0, 0.0, 0.0], vec![2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.volume(), 24.0);
        assert_eq!(m.margin(), 9.0);
        assert!((m.diagonal() - 29f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn overlap_of_half_overlapping_boxes() {
        let a = unit_box();
        let b = Mbr::new(vec![0.5, 0.0], vec![1.5, 1.0]).unwrap();
        assert!((a.overlap(&b) - 0.5).abs() < 1e-12);
        let c = Mbr::new(vec![2.0, 2.0], vec![3.0, 3.0]).unwrap();
        assert_eq!(a.overlap(&c), 0.0);
    }

    #[test]
    fn enlargement_for_is_growth_in_volume() {
        let a = unit_box();
        let b = Mbr::new(vec![1.0, 0.0], vec![2.0, 1.0]).unwrap();
        // Union is [0,2]x[0,1] with volume 2; growth = 1.
        assert!((a.enlargement_for(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn center_is_midpoint() {
        assert_eq!(unit_box().center(), vec![0.5, 0.5]);
    }

    #[test]
    fn min_dist_sq_inside_is_zero_outside_positive() {
        let m = unit_box();
        assert_eq!(m.min_dist_sq_to_point(&[0.5, 0.5]), 0.0);
        assert!((m.min_dist_sq_to_point(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((m.min_dist_sq_to_point(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
