//! Dense-vector primitives on `&[f64]` slices.
//!
//! The paper (§3–§4) identifies time sequences, points and position vectors
//! in ℝⁿ; every higher-level construct in this workspace reduces to the
//! handful of kernels below. They are written over plain slices so the hot
//! paths of the R*-tree search and the sequential-scan baseline never
//! allocate.
//!
//! All binary kernels `debug_assert!` equal lengths; release builds rely on
//! the callers (which validate once at the API boundary) so the inner loops
//! stay branch-free.

/// Dot product `u · v = Σ uᵢ·vᵢ` (paper §4, property 1).
#[inline]
pub fn dot(u: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    u.iter().zip(v).map(|(a, b)| a * b).sum()
}

/// Squared Euclidean norm `‖u‖² = u · u`.
#[inline]
pub fn norm_sq(u: &[f64]) -> f64 {
    dot(u, u)
}

/// Euclidean norm `‖u‖` (paper §4, property 2).
#[inline]
pub fn norm(u: &[f64]) -> f64 {
    norm_sq(u).sqrt()
}

/// Squared Euclidean distance `‖u − v‖²`.
#[inline]
pub fn dist_sq(u: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    u.iter().zip(v).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// Euclidean distance `‖u − v‖` = the `D₂` metric of paper §1.
#[inline]
pub fn dist(u: &[f64], v: &[f64]) -> f64 {
    dist_sq(u, v).sqrt()
}

/// The `L_p` distance `D_p(u, v) = (Σ |uᵢ−vᵢ|^p)^{1/p}` of paper §1.
///
/// The engine itself only uses `p = 2`, but the metric family is part of the
/// paper's problem statement, so it is provided for completeness (and for
/// users who want to post-filter matches under a different norm).
///
/// `p` must be ≥ 1 for this to be a metric; values in `(0, 1)` still compute
/// the formal expression. `p = f64::INFINITY` yields the Chebyshev distance.
// Exact comparison dispatches callers asking for literally L2/L1 to the
// specialised kernels; see the analyze::allow markers below.
#[allow(clippy::float_cmp)]
pub fn lp_dist(u: &[f64], v: &[f64], p: f64) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    assert!(p > 0.0, "L_p distance requires p > 0, got {p}");
    if p.is_infinite() {
        return u
            .iter()
            .zip(v)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
    }
    // analyze::allow(float-eq): dispatch on the caller's literal parameter — callers asking for exactly L2/L1 get the specialised kernels; nearby values correctly take the general path.
    if p == 2.0 {
        return dist(u, v);
    }
    // analyze::allow(float-eq): see above.
    if p == 1.0 {
        return u.iter().zip(v).map(|(a, b)| (a - b).abs()).sum();
    }
    u.iter()
        .zip(v)
        .map(|(a, b)| (a - b).abs().powf(p))
        .sum::<f64>()
        .powf(1.0 / p)
}

/// Fused single-pass `(Σ vᵢ, Σ uᵢ·vᵢ)`.
///
/// The two accumulators are independent and each adds its terms in index
/// order, so the results are bit-identical to a separate `sum` over `v` and
/// [`dot`]`(u, v)` (`std`'s `Sum<f64>` is an in-order fold) — but the fused
/// loop reads `v` once instead of twice. This is the verify-stage kernel for
/// the z-normalized model, where every candidate needs the full fit.
#[inline]
pub fn sum_and_dot(u: &[f64], v: &[f64]) -> (f64, f64) {
    debug_assert_eq!(u.len(), v.len());
    let mut s = 0.0;
    let mut d = 0.0;
    for (x, y) in u.iter().zip(v) {
        s += y;
        d += x * y;
    }
    (s, d)
}

/// Fused single-pass `(Σ vᵢ, Σ uᵢ·vᵢ, Σ vᵢ²)`.
///
/// Like [`sum_and_dot`] with a third independent accumulator for `‖v‖²`;
/// each is bit-identical to its standalone kernel. This is the screening
/// kernel of the verify stage: one read of `v` yields every moment the
/// closed-form scale-shift fit needs, so a candidate that the algebraic
/// distance bound certifies as a false alarm costs exactly one pass.
#[inline]
pub fn sum_dot_normsq(u: &[f64], v: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(u.len(), v.len());
    let mut s = 0.0;
    let mut d = 0.0;
    let mut q = 0.0;
    for (x, y) in u.iter().zip(v) {
        s += y;
        d += x * y;
        q += y * y;
    }
    (s, d, q)
}

/// Lane-chunked dot product for *screening* passes: eight independent
/// accumulator lanes, deterministic but **not** bit-identical to [`dot`]
/// (reassociation error `≈ n·ε_mach` of `Σ|uᵢ·vᵢ|`). Exact consumers use
/// [`dot`]; screening bounds carry an explicit margin for this error.
pub fn dot_lanes(u: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    const LANES: usize = 8;
    let split = u.len() - u.len() % LANES;
    let (u_body, u_tail) = u.split_at(split);
    let (v_body, v_tail) = v.split_at(split);
    let mut d = [0.0f64; LANES];
    for (a, b) in u_body.chunks_exact(LANES).zip(v_body.chunks_exact(LANES)) {
        for ((x, y), dl) in a.iter().zip(b).zip(&mut d) {
            *dl += x * y;
        }
    }
    let mut dt: f64 = d.iter().sum();
    for (x, y) in u_tail.iter().zip(v_tail) {
        dt += x * y;
    }
    dt
}

/// Lane-chunked variant of [`sum_dot_normsq`] for *screening* passes: eight
/// independent accumulator lanes break the sequential-addition latency chain
/// and leave the loop free for the compiler to vectorise.
///
/// Deterministic (the association is fixed) but **not** bit-identical to the
/// sequential kernel — the results differ by ordinary reassociation error,
/// bounded by `≈ n·ε_mach` of the accumulated term magnitudes. Callers that
/// need exact bits (the verification fit itself) use the sequential kernels;
/// this one exists for bounds that carry an explicit error margin, like
/// [`QueryFit::fit_within`](crate::scale_shift::QueryFit::fit_within).
pub fn sum_dot_normsq_lanes(u: &[f64], v: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(u.len(), v.len());
    const LANES: usize = 8;
    let split = u.len() - u.len() % LANES;
    let (u_body, u_tail) = u.split_at(split);
    let (v_body, v_tail) = v.split_at(split);
    let mut s = [0.0f64; LANES];
    let mut d = [0.0f64; LANES];
    let mut q = [0.0f64; LANES];
    for (a, b) in u_body.chunks_exact(LANES).zip(v_body.chunks_exact(LANES)) {
        for (((x, y), sl), (dl, ql)) in a.iter().zip(b).zip(&mut s).zip(d.iter_mut().zip(&mut q)) {
            *sl += *y;
            *dl += x * y;
            *ql += y * y;
        }
    }
    let (mut st, mut dt, mut qt) = (0.0, 0.0, 0.0);
    for (sl, (dl, ql)) in s.iter().zip(d.iter().zip(&q)) {
        st += sl;
        dt += dl;
        qt += ql;
    }
    for (x, y) in u_tail.iter().zip(v_tail) {
        st += y;
        dt += x * y;
        qt += y * y;
    }
    (st, dt, qt)
}

/// Arithmetic mean of the components, `(Σ uᵢ)/n`; `0.0` for the empty slice.
///
/// The mean is exactly the coordinate of `u` along the shifting vector `N`
/// divided by `‖N‖²`·n — removing it is the SE-transformation (see
/// [`crate::se`]).
#[inline]
pub fn mean(u: &[f64]) -> f64 {
    if u.is_empty() {
        0.0
    } else {
        u.iter().sum::<f64>() / u.len() as f64
    }
}

/// `out ← a·x + y`, the classic AXPY kernel.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), out.len());
    for ((o, xi), yi) in out.iter_mut().zip(x).zip(y) {
        *o = a * xi + yi;
    }
}

/// `out ← u − v`.
#[inline]
pub fn sub(u: &[f64], v: &[f64], out: &mut [f64]) {
    debug_assert_eq!(u.len(), v.len());
    debug_assert_eq!(u.len(), out.len());
    for ((o, a), b) in out.iter_mut().zip(u).zip(v) {
        *o = a - b;
    }
}

/// `u ← c·u`, in place.
#[inline]
pub fn scale_in_place(u: &mut [f64], c: f64) {
    for x in u {
        *x *= c;
    }
}

/// `u ← u + c` component-wise (a vertical shift by offset `c`, i.e. `u + c·N`).
#[inline]
pub fn shift_in_place(u: &mut [f64], c: f64) {
    for x in u {
        *x += c;
    }
}

/// Returns `‖a·u − v‖²` without materialising `a·u`.
///
/// This is the inner kernel of the leaf-level check of Theorem 2: the
/// distance between a point of the query's SE-line (`a·T_se(u)`) and a stored
/// feature point (`T_se(v)`).
#[inline]
pub fn scaled_dist_sq(a: f64, u: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    u.iter()
        .zip(v)
        .map(|(x, y)| {
            let d = a * x - y;
            d * d
        })
        .sum()
}

/// True when every component of `u` differs from the matching component of
/// `v` by at most `tol` (absolute).
pub fn approx_eq(u: &[f64], v: &[f64], tol: f64) -> bool {
    u.len() == v.len() && u.iter().zip(v).all(|(a, b)| (a - b).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_of_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(norm(&[1.0, 0.0, 0.0]), 1.0);
        assert_eq!(norm(&[0.0, -3.0, 4.0]), 5.0);
    }

    #[test]
    fn dist_is_symmetric_and_zero_on_self() {
        let u = [5.0, 10.0, 6.0, 12.0, 4.0];
        let v = [10.0, 20.0, 12.0, 24.0, 8.0];
        assert_eq!(dist(&u, &v), dist(&v, &u));
        assert_eq!(dist(&u, &u), 0.0);
    }

    #[test]
    fn lp_one_is_manhattan() {
        assert_eq!(lp_dist(&[0.0, 0.0], &[3.0, -4.0], 1.0), 7.0);
    }

    #[test]
    fn lp_two_matches_euclidean() {
        let u = [1.0, 2.0, -1.0];
        let v = [0.5, -2.0, 3.0];
        assert!((lp_dist(&u, &v, 2.0) - dist(&u, &v)).abs() < 1e-12);
    }

    #[test]
    fn lp_infinity_is_chebyshev() {
        assert_eq!(lp_dist(&[0.0, 0.0], &[3.0, -4.0], f64::INFINITY), 4.0);
    }

    #[test]
    fn lp_three_hand_checked() {
        // (|1|^3 + |2|^3)^(1/3) = 9^(1/3)
        let d = lp_dist(&[0.0, 0.0], &[1.0, 2.0], 3.0);
        assert!((d - 9f64.powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires p > 0")]
    fn lp_rejects_nonpositive_p() {
        lp_dist(&[1.0], &[2.0], 0.0);
    }

    #[test]
    fn mean_of_paper_example_a() {
        // Sequence A from paper Figure 1.
        assert_eq!(mean(&[5.0, 10.0, 6.0, 12.0, 4.0]), 7.4);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn axpy_computes_a_x_plus_y() {
        let mut out = [0.0; 3];
        axpy(2.0, &[1.0, 2.0, 3.0], &[10.0, 10.0, 10.0], &mut out);
        assert_eq!(out, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn sub_and_scale_and_shift() {
        let mut out = [0.0; 2];
        sub(&[5.0, 7.0], &[2.0, 3.0], &mut out);
        assert_eq!(out, [3.0, 4.0]);
        scale_in_place(&mut out, 2.0);
        assert_eq!(out, [6.0, 8.0]);
        shift_in_place(&mut out, -6.0);
        assert_eq!(out, [0.0, 2.0]);
    }

    #[test]
    fn scaled_dist_sq_matches_explicit() {
        let u = [1.0, 2.0, 3.0];
        let v = [2.0, 2.0, 2.0];
        let a = 1.5;
        let explicit: f64 = u
            .iter()
            .zip(&v)
            .map(|(x, y)| (a * x - y) * (a * x - y))
            .sum();
        assert!((scaled_dist_sq(a, &u, &v) - explicit).abs() < 1e-12);
    }

    #[test]
    fn fused_kernels_are_bit_identical_to_separate_passes() {
        // Awkward magnitudes on purpose: bit-identity must hold exactly, not
        // merely to within rounding.
        let u: Vec<f64> = (0..129)
            .map(|i| (f64::from(i) * 0.7).sin() * 1e3 + 1.0 / (f64::from(i) + 3.0))
            .collect();
        let v: Vec<f64> = (0..129)
            .map(|i| (f64::from(i) * 1.3).cos() * 1e-3 + f64::from(i))
            .collect();
        let (s2, d2) = sum_and_dot(&u, &v);
        let (s3, d3, q3) = sum_dot_normsq(&u, &v);
        let s_ref: f64 = v.iter().sum();
        assert_eq!(s2.to_bits(), s_ref.to_bits());
        assert_eq!(s3.to_bits(), s_ref.to_bits());
        assert_eq!(d2.to_bits(), dot(&u, &v).to_bits());
        assert_eq!(d3.to_bits(), dot(&u, &v).to_bits());
        assert_eq!(q3.to_bits(), norm_sq(&v).to_bits());
    }

    #[test]
    fn fused_kernels_on_empty_slices() {
        assert_eq!(sum_and_dot(&[], &[]), (0.0, 0.0));
        assert_eq!(sum_dot_normsq(&[], &[]), (0.0, 0.0, 0.0));
        assert_eq!(sum_dot_normsq_lanes(&[], &[]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn lane_kernel_is_deterministic_and_close_to_sequential() {
        // Every length class: below one lane block, exact multiples, and
        // ragged tails.
        for len in [0usize, 1, 3, 7, 8, 9, 16, 40, 129] {
            let u: Vec<f64> = (0..len)
                .map(|i| (i as f64 * 0.7).sin() * 1e4 + 0.25)
                .collect();
            let v: Vec<f64> = (0..len)
                .map(|i| (i as f64 * 1.3).cos() * 3.0 - 1e2)
                .collect();
            let seq = sum_dot_normsq(&u, &v);
            let lanes = sum_dot_normsq_lanes(&u, &v);
            assert_eq!(
                lanes,
                sum_dot_normsq_lanes(&u, &v),
                "lane kernel must be deterministic (len {len})"
            );
            // Reassociation error only: far inside n·ε_mach of the term
            // magnitudes (the screening margin is 1e-9 of those).
            let mag: f64 = v.iter().map(|y| y.abs()).sum::<f64>() + 1.0;
            for (a, b) in [(seq.0, lanes.0), (seq.1, lanes.1), (seq.2, lanes.2)] {
                assert!(
                    (a - b).abs() <= 1e-11 * mag * mag,
                    "len {len}: sequential {a} vs lanes {b}"
                );
            }
        }
    }

    #[test]
    fn approx_eq_tolerates_within_tol_only() {
        assert!(approx_eq(&[1.0, 2.0], &[1.0 + 1e-9, 2.0 - 1e-9], 1e-8));
        assert!(!approx_eq(&[1.0, 2.0], &[1.1, 2.0], 1e-8));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1.0));
    }
}
