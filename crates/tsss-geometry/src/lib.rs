//! Vector geometry underlying *Fast Time-Series Searching with Scaling and
//! Shifting* (Chu & Wong, PODS '99).
//!
//! A length-`n` time series is treated as a point/position vector in ℝⁿ
//! (paper §3). This crate provides, from scratch:
//!
//! * basic dense-vector operations on `&[f64]` slices ([`vector`]),
//! * lines in ℝⁿ with the point–line and line–line shortest distances
//!   `PLD`/`LLD` of paper §4 ([`mod@line`]),
//! * the scale-shift transformation `F_{a,b}(u) = a·u + b·N` together with the
//!   closed-form optimal `(a, b)` of paper §5.2 ([`scale_shift`]),
//! * the Shift-Eliminated (SE) Transformation of paper §5.1 ([`se`]),
//! * minimum bounding hyper-rectangles and their ε-enlargement ([`mbr`]),
//! * the Entering/Exiting-Points (slab) line–MBR penetration test and the
//!   inner/outer bounding-sphere heuristic of paper §6.1/§7 ([`penetration`],
//!   [`sphere`]).
//!
//! Everything operates on `f64` and plain slices so that the index and engine
//! crates can stay allocation-free on their hot paths.

#![forbid(unsafe_code)]
// Tests assert bit-exact determinism and build small fixtures, where exact
// float comparison and narrowing literals are the point, not a hazard.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]
// Belt-and-braces next to the analyzer's R1: clippy flags stray unwraps in
// non-test code too, so regressions fail CI twice.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod line;
pub mod mbr;
pub mod penetration;
pub mod scale_shift;
pub mod se;
pub mod sphere;
pub mod vector;

pub use line::{lld, pld, Line};
pub use mbr::Mbr;
pub use penetration::{line_mbr_interval, line_penetrates_mbr, PenetrationMethod};
pub use scale_shift::{min_scale_shift_distance, optimal_scale_shift, ScaleShift};
pub use se::{se_norm, se_transform, se_transform_in_place};
pub use sphere::Sphere;

/// Error type for dimension mismatches between geometric operands.
///
/// All binary operations in this crate require both operands to live in the
/// same ℝⁿ; constructing a query against data of a different window length is
/// a caller bug that we surface explicitly rather than panicking deep inside
/// a distance kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionMismatch {
    /// Dimension of the left/first operand.
    pub left: usize,
    /// Dimension of the right/second operand.
    pub right: usize,
}

impl std::fmt::Display for DimensionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimension mismatch: left operand has {} components, right has {}",
            self.left, self.right
        )
    }
}

impl std::error::Error for DimensionMismatch {}
