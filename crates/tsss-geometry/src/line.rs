//! Lines in ℝⁿ and the shortest-distance functions `PLD` and `LLD` of
//! paper §4.
//!
//! A line is the point set `{ p₀ + t·d : t ∈ ℝ }` (paper §4, property 5). Two
//! kinds of lines drive the whole search algorithm:
//!
//! * the **scaling line** of a query `u`: `{ t·u }`, through the origin, and
//! * the **shifting line** of a data subsequence `v`: `{ v + t·N }`, along
//!   the shifting vector `N = (1, …, 1)`.
//!
//! [`pld`] implements Lemma 1 and [`lld`] implements Lemma 2. Note that the
//! paper's printed Lemma 2 has `‖d₂‖²` in the denominator of the Gram–Schmidt
//! term — this is a typo for `‖d₂⊥‖²` (with the printed form the claimed
//! shortest distance is not even attained by any pair of points on the lines
//! unless `d₂⊥` happens to be unit length). We implement the corrected
//! formula and validate it against direct numeric minimisation in the
//! property tests.

// analyze::allow-file(index): the kernels index only within `0..n` where `n` is the common dimension `debug_assert`ed (and checked by the public entry points) to match every operand vector.

use crate::vector::{dot, norm_sq, sub};
use crate::DimensionMismatch;

/// Tolerance under which a squared norm is considered zero, i.e. a direction
/// vector degenerates and the "line" is really a point.
pub(crate) const DEGENERATE_SQ: f64 = 1e-300;

/// A line `{ p + t·d : t ∈ ℝ }` in ℝⁿ.
///
/// Degenerate directions (`‖d‖ ≈ 0`) are permitted: such a "line" is the
/// single point `p`, and the distance functions fall back to point distances.
/// This matters in practice because the scaling line of an (almost) all-zero
/// query collapses to the origin.
#[derive(Debug, Clone, PartialEq)]
pub struct Line {
    /// A position vector of one point on the line (`p₀` in the paper).
    pub point: Vec<f64>,
    /// A vector parallel to the line (`d` in the paper).
    pub dir: Vec<f64>,
}

impl Line {
    /// Creates a line from a point on it and a direction.
    ///
    /// # Errors
    /// Returns [`DimensionMismatch`] when `point` and `dir` differ in length.
    pub fn new(point: Vec<f64>, dir: Vec<f64>) -> Result<Self, DimensionMismatch> {
        if point.len() != dir.len() {
            return Err(DimensionMismatch {
                left: point.len(),
                right: dir.len(),
            });
        }
        Ok(Self { point, dir })
    }

    /// The **scaling line** `Line_sa(u) = { t·u }` of paper §5: the locus of
    /// all scalings of `u`. Passes through the origin.
    pub fn scaling(u: &[f64]) -> Self {
        Self {
            point: vec![0.0; u.len()],
            dir: u.to_vec(),
        }
    }

    /// The **shifting line** `Line_sh(v) = { v + t·N }` of paper §5: the
    /// locus of all vertical shifts of `v`, where `N = (1, …, 1)`.
    pub fn shifting(v: &[f64]) -> Self {
        Self {
            point: v.to_vec(),
            dir: vec![1.0; v.len()],
        }
    }

    /// Ambient dimension `n`.
    pub fn dim(&self) -> usize {
        self.point.len()
    }

    /// The point `L(t) = p + t·d`.
    pub fn at(&self, t: f64) -> Vec<f64> {
        self.point
            .iter()
            .zip(&self.dir)
            .map(|(p, d)| p + t * d)
            .collect()
    }

    /// True when the direction is numerically zero, i.e. the line degenerates
    /// to the single point `p`.
    pub fn is_degenerate(&self) -> bool {
        norm_sq(&self.dir) <= DEGENERATE_SQ
    }

    /// The parameter `t*` minimising `‖q − L(t)‖`, i.e. the foot of the
    /// perpendicular from `q`; `0.0` for a degenerate line.
    pub fn project_param(&self, q: &[f64]) -> f64 {
        debug_assert_eq!(q.len(), self.dim());
        let dd = norm_sq(&self.dir);
        if dd <= DEGENERATE_SQ {
            return 0.0;
        }
        let mut qp = vec![0.0; q.len()];
        sub(q, &self.point, &mut qp);
        dot(&qp, &self.dir) / dd
    }
}

/// `PLD(q, L)` — the shortest `D₂` distance between point `q` and line `L`
/// (paper §4, Lemma 1):
///
/// ```text
/// PLD(q, L) = ‖ (q − p) − ((q − p)·d / ‖d‖²) · d ‖
/// ```
///
/// For a degenerate line this is simply `‖q − p‖`.
///
/// # Panics
/// Debug-asserts that `q` and `l` share a dimension; the public engine
/// validates dimensions at its boundary.
pub fn pld(q: &[f64], l: &Line) -> f64 {
    pld_sq(q, l).sqrt()
}

/// Squared version of [`pld`], avoiding the final square root for callers
/// that compare against `ε²`.
pub fn pld_sq(q: &[f64], l: &Line) -> f64 {
    debug_assert_eq!(q.len(), l.dim());
    let dd = norm_sq(&l.dir);
    let mut qp = vec![0.0; q.len()];
    sub(q, &l.point, &mut qp);
    if dd <= DEGENERATE_SQ {
        return norm_sq(&qp);
    }
    let t = dot(&qp, &l.dir) / dd;
    qp.iter()
        .zip(&l.dir)
        .map(|(r, d)| {
            let e = r - t * d;
            e * e
        })
        .sum()
}

/// `LLD(L₁, L₂)` — the shortest `D₂` distance between two lines in ℝⁿ
/// (paper §4, Lemma 2, with the Gram–Schmidt denominator corrected to
/// `‖d₂⊥‖²`; see the module docs).
///
/// When `d₁ ∥ d₂` (including either being degenerate) the distance reduces to
/// a point-to-line distance, exactly as the paper's case split states.
///
/// ```
/// use tsss_geometry::line::{lld, Line};
/// // Figure 1's A and C are scale-shift equivalent, so their scaling and
/// // shifting lines meet (Theorem 1).
/// let a = [5.0, 10.0, 6.0, 12.0, 4.0];
/// let c = [25.0, 30.0, 26.0, 32.0, 24.0];
/// let d = lld(&Line::scaling(&a), &Line::shifting(&c));
/// assert!(d < 1e-9);
/// ```
pub fn lld(l1: &Line, l2: &Line) -> f64 {
    lld_sq(l1, l2).sqrt()
}

/// Squared version of [`lld`].
pub fn lld_sq(l1: &Line, l2: &Line) -> f64 {
    debug_assert_eq!(l1.dim(), l2.dim());
    let n = l1.dim();
    let d1d1 = norm_sq(&l1.dir);
    let d2d2 = norm_sq(&l2.dir);
    if d1d1 <= DEGENERATE_SQ {
        // L1 is the point p1.
        return pld_sq(&l1.point, l2);
    }
    if d2d2 <= DEGENERATE_SQ {
        return pld_sq(&l2.point, l1);
    }

    // d2 perpendicular to d1 (Gram–Schmidt).
    let c = dot(&l2.dir, &l1.dir) / d1d1;
    let d2p: Vec<f64> = (0..n).map(|i| l2.dir[i] - c * l1.dir[i]).collect();
    let d2p_sq = norm_sq(&d2p);

    let mut r = vec![0.0; n]; // p1 - p2
    sub(&l1.point, &l2.point, &mut r);

    // Parallel lines: the perpendicular component of d2 vanishes. Use a
    // *relative* tolerance — two nearly-parallel scaling lines of large
    // vectors must not be misclassified just because of absolute magnitude.
    if d2p_sq <= 1e-24 * d2d2 {
        return pld_sq(&l1.point, l2);
    }

    let a1 = dot(&r, &l1.dir) / d1d1;
    let a2 = dot(&r, &d2p) / d2p_sq;
    (0..n)
        .map(|i| {
            let e = r[i] - a1 * l1.dir[i] - a2 * d2p[i];
            e * e
        })
        .sum()
}

/// The pair of parameters `(t₁, t₂)` achieving `LLD`, i.e. the closest points
/// are `L₁(t₁)` and `L₂(t₂)`.
///
/// For parallel or degenerate configurations the minimiser is not unique; a
/// canonical representative is returned (foot-of-perpendicular projections,
/// with `0` for degenerate directions). Used to recover the scaling factor
/// and shifting offset from the geometric picture (paper Figure 2).
pub fn lld_argmin(l1: &Line, l2: &Line) -> (f64, f64) {
    debug_assert_eq!(l1.dim(), l2.dim());
    let d1d1 = norm_sq(&l1.dir);
    let d2d2 = norm_sq(&l2.dir);
    if d1d1 <= DEGENERATE_SQ {
        return (0.0, l2.project_param(&l1.point));
    }
    if d2d2 <= DEGENERATE_SQ {
        return (l1.project_param(&l2.point), 0.0);
    }
    let d1d2 = dot(&l1.dir, &l2.dir);
    let denom = d1d1 * d2d2 - d1d2 * d1d2; // Gram determinant ≥ 0
    let mut r = vec![0.0; l1.dim()]; // p2 - p1
    sub(&l2.point, &l1.point, &mut r);
    let rd1 = dot(&r, &l1.dir);
    let rd2 = dot(&r, &l2.dir);
    if denom <= 1e-24 * d1d1 * d2d2 {
        // Parallel: fix t2 = 0, project p2 onto L1.
        return (rd1 / d1d1, 0.0);
    }
    // Solve the 2x2 normal equations of min ‖p1 + t1 d1 − p2 − t2 d2‖².
    let t1 = (rd1 * d2d2 - rd2 * d1d2) / denom;
    let t2 = (rd1 * d1d2 - rd2 * d1d1) / denom;
    (t1, t2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{dist, norm};

    fn brute_force_lld(l1: &Line, l2: &Line) -> f64 {
        // Coarse-to-fine grid search over (t1, t2).
        let mut best = f64::INFINITY;
        let (mut c1, mut c2, mut span) = (0.0f64, 0.0f64, 64.0f64);
        for _ in 0..40 {
            let mut best_t = (c1, c2);
            for i in -20..=20 {
                for j in -20..=20 {
                    let t1 = c1 + span * i as f64 / 20.0;
                    let t2 = c2 + span * j as f64 / 20.0;
                    let d = dist(&l1.at(t1), &l2.at(t2));
                    if d < best {
                        best = d;
                        best_t = (t1, t2);
                    }
                }
            }
            c1 = best_t.0;
            c2 = best_t.1;
            span *= 0.25;
        }
        best
    }

    #[test]
    fn new_rejects_mismatched_dims() {
        let err = Line::new(vec![0.0, 0.0], vec![1.0]).unwrap_err();
        assert_eq!(err, DimensionMismatch { left: 2, right: 1 });
    }

    #[test]
    fn at_parameterises_the_line() {
        let l = Line::new(vec![1.0, 2.0], vec![3.0, -1.0]).unwrap();
        assert_eq!(l.at(0.0), vec![1.0, 2.0]);
        assert_eq!(l.at(2.0), vec![7.0, 0.0]);
    }

    #[test]
    fn scaling_line_passes_through_origin_and_u() {
        let u = [5.0, 10.0, 6.0];
        let l = Line::scaling(&u);
        assert_eq!(l.at(0.0), vec![0.0; 3]);
        assert_eq!(l.at(1.0), u.to_vec());
    }

    #[test]
    fn shifting_line_moves_along_n() {
        let v = [1.0, 2.0, 3.0];
        let l = Line::shifting(&v);
        assert_eq!(l.at(5.0), vec![6.0, 7.0, 8.0]);
    }

    #[test]
    fn pld_point_on_line_is_zero() {
        let l = Line::new(vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]).unwrap();
        assert!(pld(&[3.0, 3.0, 3.0], &l) < 1e-12);
    }

    #[test]
    fn pld_axis_aligned_hand_case() {
        // Distance from (0, 5) to the x-axis is 5.
        let l = Line::new(vec![0.0, 0.0], vec![1.0, 0.0]).unwrap();
        assert!((pld(&[7.0, 5.0], &l) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pld_degenerate_line_is_point_distance() {
        let l = Line::new(vec![1.0, 1.0], vec![0.0, 0.0]).unwrap();
        assert!((pld(&[4.0, 5.0], &l) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn project_param_is_the_foot() {
        let l = Line::new(vec![0.0, 0.0], vec![2.0, 0.0]).unwrap();
        let t = l.project_param(&[6.0, 3.0]);
        assert!((t - 3.0).abs() < 1e-12);
        // Residual orthogonal to dir.
        let foot = l.at(t);
        assert!((foot[0] - 6.0).abs() < 1e-12 && foot[1].abs() < 1e-12);
    }

    #[test]
    fn lld_skew_lines_3d_hand_case() {
        // Classic skew pair: x-axis and the line {(0,1,t)}; distance 1.
        let l1 = Line::new(vec![0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0]).unwrap();
        let l2 = Line::new(vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]).unwrap();
        assert!((lld(&l1, &l2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lld_parallel_lines() {
        let l1 = Line::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let l2 = Line::new(vec![0.0, 2.0], vec![-2.0, -2.0]).unwrap();
        // Parallel lines offset by 2 along y: distance 2/√2 = √2.
        assert!((lld(&l1, &l2) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn lld_intersecting_lines_is_zero() {
        let l1 = Line::new(vec![0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0]).unwrap();
        let l2 = Line::new(vec![2.0, 0.0, 0.0], vec![0.0, 1.0, 1.0]).unwrap();
        assert!(lld(&l1, &l2) < 1e-12);
    }

    #[test]
    fn lld_degenerate_first_line() {
        let p = Line::new(vec![0.0, 3.0], vec![0.0, 0.0]).unwrap();
        let l = Line::new(vec![0.0, 0.0], vec![1.0, 0.0]).unwrap();
        assert!((lld(&p, &l) - 3.0).abs() < 1e-12);
        assert!((lld(&l, &p) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lld_matches_brute_force_on_fixed_cases() {
        let cases = vec![
            (
                Line::new(vec![1.0, 2.0, 3.0], vec![0.5, -1.0, 2.0]).unwrap(),
                Line::new(vec![-1.0, 0.0, 4.0], vec![1.0, 1.0, 1.0]).unwrap(),
            ),
            (
                Line::scaling(&[5.0, 10.0, 6.0, 12.0, 4.0]),
                Line::shifting(&[25.0, 30.0, 26.0, 32.0, 24.0]),
            ),
            (Line::scaling(&[1.0, 2.0]), Line::shifting(&[-3.0, 7.0])),
        ];
        for (l1, l2) in cases {
            let exact = lld(&l1, &l2);
            let approx = brute_force_lld(&l1, &l2);
            assert!(
                (exact - approx).abs() < 1e-4,
                "lld {exact} vs brute {approx}"
            );
        }
    }

    #[test]
    fn lld_argmin_achieves_the_distance() {
        let l1 = Line::new(vec![1.0, 2.0, 3.0], vec![0.5, -1.0, 2.0]).unwrap();
        let l2 = Line::new(vec![-1.0, 0.0, 4.0], vec![1.0, 1.0, 1.0]).unwrap();
        let (t1, t2) = lld_argmin(&l1, &l2);
        let achieved = dist(&l1.at(t1), &l2.at(t2));
        assert!((achieved - lld(&l1, &l2)).abs() < 1e-9);
    }

    #[test]
    fn lld_argmin_parallel_is_consistent() {
        let l1 = Line::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let l2 = Line::new(vec![0.0, 2.0], vec![3.0, 3.0]).unwrap();
        let (t1, t2) = lld_argmin(&l1, &l2);
        let achieved = dist(&l1.at(t1), &l2.at(t2));
        assert!((achieved - lld(&l1, &l2)).abs() < 1e-9);
    }

    #[test]
    fn paper_figure1_sequences_have_zero_min_distance() {
        // A, B, C of Figure 1 are pairwise scale-shift equivalent, so the
        // scaling/shifting line pairs must meet (LLD = 0).
        let a = [5.0, 10.0, 6.0, 12.0, 4.0];
        let b = [10.0, 20.0, 12.0, 24.0, 8.0];
        let c = [25.0, 30.0, 26.0, 32.0, 24.0];
        for (u, v) in [(&a, &b), (&a, &c), (&b, &c), (&b, &a), (&c, &a)] {
            let d = lld(&Line::scaling(&u[..]), &Line::shifting(&v[..]));
            assert!(d < 1e-10, "expected similar pair, lld = {d}");
        }
    }

    #[test]
    fn scaling_line_of_constant_sequence_is_parallel_to_shifting_lines() {
        // u = c·N makes Line_sa(u) parallel to every shifting line; the code
        // must take the parallel branch and still match brute force.
        let u = [2.0, 2.0, 2.0, 2.0];
        let v = [1.0, 4.0, 2.0, 3.0];
        let l1 = Line::scaling(&u);
        let l2 = Line::shifting(&v);
        let exact = lld(&l1, &l2);
        let approx = brute_force_lld(&l1, &l2);
        assert!((exact - approx).abs() < 1e-4);
        // Distance must equal the norm of mean-centred v.
        let m = crate::vector::mean(&v);
        let centred: Vec<f64> = v.iter().map(|x| x - m).collect();
        assert!((exact - norm(&centred)).abs() < 1e-9);
    }
}
