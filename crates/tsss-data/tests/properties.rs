//! Property-based tests for the data substrate: CSV round-trips must be
//! bit-exact for arbitrary finite series, and workload generation must
//! honour its configuration for every seed.

use proptest::prelude::*;
use tsss_data::csv::{from_csv, to_csv};
use tsss_data::{MarketConfig, MarketSimulator, QueryWorkload, Series, WorkloadConfig};

fn series_strategy() -> impl Strategy<Value = Series> {
    (
        "[A-Za-z0-9_.]{1,12}",
        prop::collection::vec(
            prop::num::f64::NORMAL | prop::num::f64::ZERO | prop::num::f64::SUBNORMAL,
            0..50,
        ),
    )
        .prop_map(|(name, values)| Series::new(name, values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CSV round-trip is bit-exact for any finite values and sane names.
    #[test]
    fn csv_roundtrip_is_bit_exact(series in prop::collection::vec(series_strategy(), 0..8)) {
        // Adjacent series sharing a name would merge on parse; deduplicate.
        let mut seen = std::collections::HashSet::new();
        let series: Vec<Series> = series
            .into_iter()
            .filter(|s| seen.insert(s.name.clone()))
            .collect();
        let parsed = from_csv(&to_csv(&series)).unwrap();
        // Empty series vanish in the long format (no rows) — compare only
        // non-empty ones.
        let expect: Vec<&Series> = series.iter().filter(|s| !s.is_empty()).collect();
        prop_assert_eq!(parsed.len(), expect.len());
        for (a, b) in parsed.iter().zip(expect) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.values.len(), b.values.len());
            for (x, y) in a.values.iter().zip(&b.values) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// The market simulator is a pure function of its configuration.
    #[test]
    fn market_is_deterministic(companies in 1usize..6, days in 2usize..40, seed in any::<u64>()) {
        let cfg = MarketConfig::small(companies, days, seed);
        let a = MarketSimulator::new(cfg.clone()).generate();
        let b = MarketSimulator::new(cfg).generate();
        prop_assert_eq!(a, b);
    }

    /// Prices are positive and shaped as configured for every seed.
    #[test]
    fn market_shape_and_positivity(seed in any::<u64>()) {
        let series = MarketSimulator::new(MarketConfig::small(4, 30, seed)).generate();
        prop_assert_eq!(series.len(), 4);
        for s in &series {
            prop_assert_eq!(s.len(), 30);
            prop_assert!(s.values.iter().all(|&v| v > 0.0 && v.is_finite()));
        }
    }

    /// Generated queries always honour the configured length, scale range,
    /// and provenance bounds.
    #[test]
    fn workload_respects_its_config(
        seed in any::<u64>(),
        window in 4usize..24,
        scale_range in 1.0f64..5.0,
    ) {
        let data = MarketSimulator::new(MarketConfig::small(5, 40, seed)).generate();
        let cfg = WorkloadConfig {
            queries: 10,
            window_len: window,
            scale_range,
            shift_range: 7.0,
            noise_level: 0.0,
            seed,
        };
        let w = QueryWorkload::generate(&data, cfg);
        prop_assert_eq!(w.queries.len(), 10);
        for q in &w.queries {
            prop_assert_eq!(q.values.len(), window);
            prop_assert!(q.source_series < data.len());
            prop_assert!(q.source_offset + window <= data[q.source_series].len());
            prop_assert!(q.applied.a >= 1.0 / scale_range - 1e-9);
            prop_assert!(q.applied.a <= scale_range + 1e-9);
            prop_assert!(q.applied.b.abs() <= 7.0 + 1e-9);
            // Noiseless queries are exact transforms of their source.
            let src = data[q.source_series].window(q.source_offset, window).unwrap();
            let rebuilt = q.applied.apply(src);
            for (x, y) in rebuilt.iter().zip(&q.values) {
                prop_assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()));
            }
        }
    }
}
