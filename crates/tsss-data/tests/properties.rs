//! Randomised tests for the data substrate: CSV round-trips must be
//! bit-exact for arbitrary finite series, and workload generation must
//! honour its configuration for every seed.
//!
//! Deterministic pseudo-random cases (seeded [`tsss_rand::Rng`]) replace the
//! former proptest strategies so the workspace builds offline.

use tsss_data::csv::{from_csv, to_csv};
use tsss_data::{MarketConfig, MarketSimulator, QueryWorkload, Series, WorkloadConfig};
use tsss_rand::Rng;

const CASES: usize = 128;

const NAME_CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_.";

fn random_series(rng: &mut Rng) -> Series {
    let name_len = 1 + rng.usize_below(12);
    let name: String = (0..name_len)
        .map(|_| NAME_CHARS[rng.usize_below(NAME_CHARS.len())] as char)
        .collect();
    let n = rng.usize_below(50);
    // Mix of magnitudes, zeros, and subnormals — CSV must round-trip all of
    // them bit-exactly.
    let values: Vec<f64> = (0..n)
        .map(|_| match rng.usize_below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::from_bits(rng.next_u64() % (1u64 << 52)), // subnormal
            3 => rng.f64_range(-1e300, 1e300),
            _ => rng.f64_range(-1e6, 1e6),
        })
        .collect();
    Series::new(name, values)
}

/// CSV round-trip is bit-exact for any finite values and sane names.
#[test]
fn csv_roundtrip_is_bit_exact() {
    let mut rng = Rng::seed_from_u64(0xDA7A_1001);
    for _ in 0..CASES {
        let n_series = rng.usize_below(8);
        let series: Vec<Series> = (0..n_series).map(|_| random_series(&mut rng)).collect();
        // Adjacent series sharing a name would merge on parse; deduplicate.
        let mut seen = std::collections::HashSet::new();
        let series: Vec<Series> = series
            .into_iter()
            .filter(|s| seen.insert(s.name.clone()))
            .collect();
        let parsed = from_csv(&to_csv(&series)).unwrap();
        // Empty series vanish in the long format (no rows) — compare only
        // non-empty ones.
        let expect: Vec<&Series> = series.iter().filter(|s| !s.is_empty()).collect();
        assert_eq!(parsed.len(), expect.len());
        for (a, b) in parsed.iter().zip(expect) {
            assert_eq!(&a.name, &b.name);
            assert_eq!(a.values.len(), b.values.len());
            for (x, y) in a.values.iter().zip(&b.values) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

/// The market simulator is a pure function of its configuration.
#[test]
fn market_is_deterministic() {
    let mut rng = Rng::seed_from_u64(0xDA7A_1002);
    for _ in 0..CASES {
        let companies = 1 + rng.usize_below(5);
        let days = 2 + rng.usize_below(38);
        let seed = rng.next_u64();
        let cfg = MarketConfig::small(companies, days, seed);
        let a = MarketSimulator::new(cfg.clone()).generate();
        let b = MarketSimulator::new(cfg).generate();
        assert_eq!(a, b);
    }
}

/// Prices are positive and shaped as configured for every seed.
#[test]
fn market_shape_and_positivity() {
    let mut rng = Rng::seed_from_u64(0xDA7A_1003);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let series = MarketSimulator::new(MarketConfig::small(4, 30, seed)).generate();
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.len(), 30);
            assert!(s.values.iter().all(|&v| v > 0.0 && v.is_finite()));
        }
    }
}

/// Generated queries always honour the configured length, scale range, and
/// provenance bounds.
#[test]
fn workload_respects_its_config() {
    let mut rng = Rng::seed_from_u64(0xDA7A_1004);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let window = 4 + rng.usize_below(20);
        let scale_range = rng.f64_range(1.0, 5.0);
        let data = MarketSimulator::new(MarketConfig::small(5, 40, seed)).generate();
        let cfg = WorkloadConfig {
            queries: 10,
            window_len: window,
            scale_range,
            shift_range: 7.0,
            noise_level: 0.0,
            seed,
        };
        let w = QueryWorkload::generate(&data, cfg);
        assert_eq!(w.queries.len(), 10);
        for q in &w.queries {
            assert_eq!(q.values.len(), window);
            assert!(q.source_series < data.len());
            assert!(q.source_offset + window <= data[q.source_series].len());
            assert!(q.applied.a >= 1.0 / scale_range - 1e-9);
            assert!(q.applied.a <= scale_range + 1e-9);
            assert!(q.applied.b.abs() <= 7.0 + 1e-9);
            // Noiseless queries are exact transforms of their source.
            let src = data[q.source_series]
                .window(q.source_offset, window)
                .unwrap();
            let rebuilt = q.applied.apply(src);
            for (x, y) in rebuilt.iter().zip(&q.values) {
                assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()));
            }
        }
    }
}
