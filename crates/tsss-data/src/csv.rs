//! Plain-text persistence for series sets.
//!
//! Format: one header line `name,values...` is deliberately avoided — each
//! line is `series_name,index,value` ("long" format), which round-trips
//! arbitrary series lengths, survives `grep`/`awk`, and imports into any
//! stats tool. Values are written with `{:.17e}` so the round-trip is
//! bit-exact for finite `f64`s.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::series::Series;

/// Serialises a series set to the long CSV format.
pub fn to_csv(series: &[Series]) -> String {
    let mut out = String::new();
    for s in series {
        for (i, v) in s.values.iter().enumerate() {
            // {:e} prints the shortest representation that round-trips f64.
            writeln!(out, "{},{},{:e}", s.name, i, v).expect("string write cannot fail");
        }
    }
    out
}

/// Parses the long CSV format produced by [`to_csv`].
///
/// Lines must arrive grouped by series and ordered by index within each
/// series (which [`to_csv`] guarantees); blank lines are ignored.
///
/// # Errors
/// Returns a descriptive `io::Error` on malformed lines, out-of-order
/// indices, or unparsable numbers.
pub fn from_csv(text: &str) -> io::Result<Vec<Series>> {
    let mut out: Vec<Series> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let bad = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {msg}: {line:?}", lineno + 1),
            )
        };
        let mut parts = line.splitn(3, ',');
        let name = parts.next().ok_or_else(|| bad("missing name"))?;
        let idx: usize = parts
            .next()
            .ok_or_else(|| bad("missing index"))?
            .parse()
            .map_err(|_| bad("bad index"))?;
        let value: f64 = parts
            .next()
            .ok_or_else(|| bad("missing value"))?
            .parse()
            .map_err(|_| bad("bad value"))?;

        let start_new = out.last().map(|s: &Series| s.name != name).unwrap_or(true);
        if start_new {
            if idx != 0 {
                return Err(bad("series must start at index 0"));
            }
            out.push(Series::new(name, vec![value]));
        } else {
            let cur = out.last_mut().expect("non-empty after start_new check");
            if idx != cur.values.len() {
                return Err(bad("non-contiguous index"));
            }
            cur.values.push(value);
        }
    }
    Ok(out)
}

/// Writes a series set to a file.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save(series: &[Series], path: &Path) -> io::Result<()> {
    fs::write(path, to_csv(series))
}

/// Reads a series set from a file.
///
/// # Errors
/// Propagates filesystem and parse errors.
pub fn load(path: &Path) -> io::Result<Vec<Series>> {
    from_csv(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Vec<Series> {
        vec![
            Series::new("AAA", vec![1.0, 2.5, -3.75]),
            Series::new("BBB", vec![0.123_456_789_012_345_68, 1e-300, 1e300]),
            Series::new("CCC", vec![42.0]),
        ]
    }

    #[test]
    fn roundtrip_is_exact() {
        let original = fixture();
        let parsed = from_csv(&to_csv(&original)).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in parsed.iter().zip(&original) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.values.len(), b.values.len());
            for (x, y) in a.values.iter().zip(&b.values) {
                assert_eq!(x.to_bits(), y.to_bits(), "value drifted in csv");
            }
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(from_csv("").unwrap().is_empty());
        assert_eq!(to_csv(&[]), "");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "A,0,1.0\n\nA,1,2.0\n";
        let parsed = from_csv(text).unwrap();
        assert_eq!(parsed, vec![Series::new("A", vec![1.0, 2.0])]);
    }

    #[test]
    fn malformed_lines_are_rejected_with_context() {
        for bad in [
            "A,0",              // missing value
            "A,x,1.0",          // bad index
            "A,0,notanumber",   // bad value
            "A,1,1.0",          // series starting at 1
            "A,0,1.0\nA,2,2.0", // gap
        ] {
            let err = from_csv(bad).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("tsss-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("market.csv");
        let original = fixture();
        save(&original, &path).unwrap();
        let parsed = load(&path).unwrap();
        assert_eq!(parsed, original);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generated_market_roundtrips() {
        let series =
            crate::gbm::MarketSimulator::new(crate::gbm::MarketConfig::small(4, 25, 9)).generate();
        let parsed = from_csv(&to_csv(&series)).unwrap();
        assert_eq!(parsed, series);
    }
}
