//! Data substrate for the PODS '99 reproduction.
//!
//! The paper's experiments run on the closing prices of 1000 Hong Kong
//! companies collected July 1995 – October 1996 (> 650 000 values). That
//! data set is proprietary, so this crate builds the closest synthetic
//! equivalent (documented in `DESIGN.md` §3):
//!
//! * [`gbm`] — a geometric-Brownian-motion market simulator with a shared
//!   market factor, producing price series with log-normal daily steps,
//!   realistic trends, and cross-series correlation (the property that
//!   drives R*-tree MBR overlap, and hence search cost),
//! * [`csv`] — plain-text persistence so experiments are reproducible and
//!   users can substitute real data,
//! * [`workload`] — query generation: sample subsequences of the data,
//!   disguise them with random scale/shift/noise, exactly the regime the
//!   paper's similarity model is meant to see through.

#![forbid(unsafe_code)]
// Tests assert bit-exact determinism and build small fixtures, where exact
// float comparison and narrowing literals are the point, not a hazard.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]
#![warn(missing_docs)]

pub mod csv;
pub mod gbm;
pub mod series;
pub mod workload;

pub use gbm::{MarketConfig, MarketSimulator};
pub use series::Series;
pub use workload::{QueryWorkload, WorkloadConfig};
