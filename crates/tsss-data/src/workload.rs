//! Query workload generation.
//!
//! The paper runs 100 queries per experiment (§7) but does not describe how
//! they were drawn. We use the standard protocol for similarity-search
//! evaluations, which also matches the problem the similarity model is
//! designed for: take a real window of the data, then *disguise* it with a
//! random scaling, a random vertical shift, and optional Gaussian noise.
//! A correct engine must see through the scale/shift (Theorem 1) and the
//! error bound ε must absorb the noise.

use tsss_rand::Rng;

use tsss_geometry::scale_shift::ScaleShift;

use crate::series::Series;

/// How queries are synthesised from the data set.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of queries (paper: 100 per experiment).
    pub queries: usize,
    /// Query length = the engine's window length `n`.
    pub window_len: usize,
    /// Scaling factors are drawn log-uniformly from `[1/scale_range, scale_range]`.
    pub scale_range: f64,
    /// Shifts are drawn uniformly from `[-shift_range, shift_range]`.
    pub shift_range: f64,
    /// Standard deviation of additive Gaussian noise, as a fraction of the
    /// window's SE-norm (0 = exact transforms of real windows).
    pub noise_level: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            queries: 100,
            window_len: 128,
            scale_range: 3.0,
            shift_range: 20.0,
            noise_level: 0.05,
            seed: 1999,
        }
    }
}

/// One generated query and its provenance (for recall checking).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The query sequence of length `window_len`.
    pub values: Vec<f64>,
    /// Index of the source series in the data set.
    pub source_series: usize,
    /// Offset of the source window within that series.
    pub source_offset: usize,
    /// The disguise applied to the source window.
    pub applied: ScaleShift,
}

/// A batch of queries over a fixed data set.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryWorkload {
    /// The generated queries.
    pub queries: Vec<Query>,
    /// The configuration that produced them.
    pub config: WorkloadConfig,
}

impl QueryWorkload {
    /// Generates a workload from `data` under `cfg`.
    ///
    /// # Panics
    /// Panics when no series is long enough to supply a window, or when the
    /// configuration is degenerate (`queries == 0`, `window_len < 2`,
    /// `scale_range < 1`).
    pub fn generate(data: &[Series], cfg: WorkloadConfig) -> Self {
        assert!(cfg.queries > 0, "need at least one query");
        assert!(cfg.window_len >= 2, "window length must be at least 2");
        assert!(cfg.scale_range >= 1.0, "scale range must be >= 1");
        assert!(cfg.noise_level >= 0.0, "noise level must be non-negative");
        let eligible: Vec<usize> = data
            .iter()
            .enumerate()
            .filter(|(_, s)| s.len() >= cfg.window_len)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !eligible.is_empty(),
            "no series long enough for window length {}",
            cfg.window_len
        );

        let mut rng = Rng::seed_from_u64(cfg.seed);
        let mut queries = Vec::with_capacity(cfg.queries);
        for _ in 0..cfg.queries {
            let series_idx = eligible[rng.usize_below(eligible.len())];
            let series = &data[series_idx];
            let offset = rng.usize_below(series.len() - cfg.window_len + 1);
            let window = series.window(offset, cfg.window_len).expect("validated");

            // Log-uniform scaling, with a random sign-free disguise (prices
            // are positive; negative scalings would be unnatural here).
            let log_s = rng.f64_range(-cfg.scale_range.ln(), cfg.scale_range.ln());
            let a = log_s.exp();
            let b = rng.f64_range(-cfg.shift_range, cfg.shift_range);
            let applied = ScaleShift { a, b };
            let mut values = applied.apply(window);

            if cfg.noise_level > 0.0 {
                let se = tsss_geometry::se::se_norm(&values);
                let sigma = cfg.noise_level * se / (cfg.window_len as f64).sqrt();
                for v in &mut values {
                    *v += sigma * rng.normal();
                }
            }

            queries.push(Query {
                values,
                source_series: series_idx,
                source_offset: offset,
                applied,
            });
        }
        Self {
            queries,
            config: cfg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbm::{MarketConfig, MarketSimulator};
    use tsss_geometry::scale_shift::min_scale_shift_distance;

    fn market() -> Vec<Series> {
        MarketSimulator::new(MarketConfig::small(10, 200, 77)).generate()
    }

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            queries: 25,
            window_len: 32,
            scale_range: 3.0,
            shift_range: 10.0,
            noise_level: 0.0,
            seed: 5,
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let data = market();
        let a = QueryWorkload::generate(&data, cfg());
        let b = QueryWorkload::generate(&data, cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn queries_have_the_configured_length() {
        let data = market();
        let w = QueryWorkload::generate(&data, cfg());
        assert_eq!(w.queries.len(), 25);
        assert!(w.queries.iter().all(|q| q.values.len() == 32));
    }

    #[test]
    fn noiseless_queries_are_exact_transforms_of_their_source() {
        let data = market();
        let w = QueryWorkload::generate(&data, cfg());
        for q in &w.queries {
            let src = data[q.source_series].window(q.source_offset, 32).unwrap();
            // The query equals F(src) exactly, so min distance src→query is 0.
            let d = min_scale_shift_distance(src, &q.values).unwrap();
            assert!(d < 1e-6, "distance {d} should be ~0 without noise");
            // And the recorded transform reproduces it.
            let rebuilt = q.applied.apply(src);
            for (x, y) in rebuilt.iter().zip(&q.values) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn noisy_queries_stay_near_their_source() {
        let data = market();
        let mut c = cfg();
        c.noise_level = 0.05;
        let w = QueryWorkload::generate(&data, c);
        for q in &w.queries {
            let src = data[q.source_series].window(q.source_offset, 32).unwrap();
            let d = min_scale_shift_distance(src, &q.values).unwrap();
            // Noise is 5 % of the window's SE-norm; allow generous slack.
            let scale = tsss_geometry::se::se_norm(&q.values).max(1e-9);
            assert!(d / scale < 0.25, "noise blew up: {}", d / scale);
            assert!(d > 0.0, "noise should not vanish entirely");
        }
    }

    #[test]
    fn scaling_factors_cover_both_directions() {
        let data = market();
        let mut c = cfg();
        c.queries = 200;
        let w = QueryWorkload::generate(&data, c);
        let ups = w.queries.iter().filter(|q| q.applied.a > 1.0).count();
        let downs = w.queries.iter().filter(|q| q.applied.a < 1.0).count();
        assert!(
            ups > 40 && downs > 40,
            "lopsided scaling: {ups} up, {downs} down"
        );
        assert!(w
            .queries
            .iter()
            .all(|q| q.applied.a >= 1.0 / 3.0 - 1e-9 && q.applied.a <= 3.0 + 1e-9));
    }

    #[test]
    #[should_panic(expected = "no series long enough")]
    fn too_long_windows_are_rejected() {
        let data = market();
        let mut c = cfg();
        c.window_len = 10_000;
        let _ = QueryWorkload::generate(&data, c);
    }
}
