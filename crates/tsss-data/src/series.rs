//! The time-series container shared across the workspace.

/// A named time series — one company's price history in the paper's setting.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Human-readable identifier (e.g. `"HK0005"`).
    pub name: String,
    /// The ordered observations.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The subsequence starting at `offset` with length `len`, or `None`
    /// when it would run off the end.
    pub fn window(&self, offset: usize, len: usize) -> Option<&[f64]> {
        let end = offset.checked_add(len)?;
        self.values.get(offset..end)
    }
}

/// Total number of observations across a set of series.
pub fn total_values(series: &[Series]) -> usize {
    series.iter().map(Series::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_extracts_the_right_slice() {
        let s = Series::new("x", vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.window(1, 3), Some(&[2.0, 3.0, 4.0][..]));
        assert_eq!(s.window(3, 2), Some(&[4.0, 5.0][..]));
        assert_eq!(s.window(3, 3), None);
        assert_eq!(s.window(usize::MAX, 2), None);
    }

    #[test]
    fn accessors() {
        let s = Series::new("y", vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        let t = Series::new("z", vec![0.0; 7]);
        assert_eq!(t.len(), 7);
        assert_eq!(total_values(&[s, t]), 7);
    }
}
