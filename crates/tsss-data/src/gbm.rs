//! Geometric-Brownian-motion stock-market simulator.
//!
//! The paper's data set — 1000 Hong Kong stocks, ~650 000 daily closing
//! prices — is proprietary, so we synthesise its statistical stand-in:
//!
//! * each stock follows GBM: `log S_{t+1} − log S_t = μ − σ²/2 + σ·Z_t`,
//!   giving the log-normal step distribution of daily closes;
//! * the innovations share a **market factor**:
//!   `Z_t = β·M_t + √(1 − β²)·ξ_t` with `M_t` common across stocks — real
//!   equity markets co-move, and this correlation is what makes
//!   SE-transformed windows of different stocks cluster, driving the R*-tree
//!   overlap regime the paper's experiments (and its bounding-sphere
//!   finding) live in;
//! * initial prices are spread over two orders of magnitude so the *shift*
//!   and *scale* invariance of the similarity model genuinely matters.
//!
//! Gaussian variates come from the Box–Muller transform in [`tsss_rand`]
//! (no external RNG crates — the workspace builds offline).

use tsss_rand::Rng;

use crate::series::Series;

/// Configuration of the market simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketConfig {
    /// Number of stocks (paper: 1000).
    pub companies: usize,
    /// Observations per stock (paper: ~650 over 16 months).
    pub days: usize,
    /// Annualised drift (applied per step after scaling by `1/252`).
    pub annual_drift: f64,
    /// Annualised volatility (scaled by `√(1/252)` per step).
    pub annual_volatility: f64,
    /// Correlation loading on the market factor, `0 ≤ β < 1`.
    pub market_beta: f64,
    /// RNG seed — the whole data set is a pure function of this config.
    pub seed: u64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        Self {
            companies: 1000,
            days: 650,
            annual_drift: 0.08,
            annual_volatility: 0.35,
            market_beta: 0.55,
            seed: 0x7555_1999, // PODS '99
        }
    }
}

impl MarketConfig {
    /// The paper-scale data set: 1000 stocks × 650 days = 650 000 values.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A reduced configuration for fast tests and examples.
    pub fn small(companies: usize, days: usize, seed: u64) -> Self {
        Self {
            companies,
            days,
            seed,
            ..Self::default()
        }
    }
}

/// Deterministic pseudo-random market generator.
#[derive(Debug)]
pub struct MarketSimulator {
    cfg: MarketConfig,
}

impl MarketSimulator {
    /// Creates a simulator for the given configuration.
    ///
    /// # Panics
    /// Panics on non-sensical configurations (zero sizes, β outside
    /// `[0, 1)`, non-positive volatility).
    pub fn new(cfg: MarketConfig) -> Self {
        assert!(cfg.companies > 0, "need at least one company");
        assert!(cfg.days > 1, "need at least two observations");
        assert!(
            (0.0..1.0).contains(&cfg.market_beta),
            "market beta must be in [0, 1)"
        );
        assert!(cfg.annual_volatility > 0.0, "volatility must be positive");
        Self { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MarketConfig {
        &self.cfg
    }

    /// Generates the full market: `companies` series of `days` values each.
    pub fn generate(&self) -> Vec<Series> {
        let cfg = &self.cfg;
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let dt = 1.0 / 252.0;
        let step_drift = (cfg.annual_drift - 0.5 * cfg.annual_volatility.powi(2)) * dt;
        let step_vol = cfg.annual_volatility * dt.sqrt();
        let beta = cfg.market_beta;
        let idio = (1.0 - beta * beta).sqrt();

        // Market factor path, shared by all stocks.
        let market: Vec<f64> = (0..cfg.days - 1).map(|_| rng.normal()).collect();

        let mut out = Vec::with_capacity(cfg.companies);
        for c in 0..cfg.companies {
            // Initial prices spread over ~2 orders of magnitude (HK$ 1–150),
            // log-uniformly.
            let s0 = 1.0 * (150.0f64 / 1.0).powf(rng.f64());
            let mut values = Vec::with_capacity(cfg.days);
            let mut log_price = s0.ln();
            values.push(s0);
            for m in &market {
                let z = beta * m + idio * rng.normal();
                log_price += step_drift + step_vol * z;
                values.push(log_price.exp());
            }
            out.push(Series::new(format!("HK{c:04}"), values));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::total_values;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = MarketSimulator::new(MarketConfig::small(5, 50, 42)).generate();
        let b = MarketSimulator::new(MarketConfig::small(5, 50, 42)).generate();
        assert_eq!(a, b);
        let c = MarketSimulator::new(MarketConfig::small(5, 50, 43)).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_match_the_config() {
        let series = MarketSimulator::new(MarketConfig::small(7, 30, 1)).generate();
        assert_eq!(series.len(), 7);
        for s in &series {
            assert_eq!(s.len(), 30);
        }
        assert_eq!(total_values(&series), 210);
    }

    #[test]
    fn paper_config_yields_650k_values() {
        let cfg = MarketConfig::paper();
        assert_eq!(cfg.companies * cfg.days, 650_000);
    }

    #[test]
    fn prices_stay_positive() {
        let series = MarketSimulator::new(MarketConfig::small(20, 300, 7)).generate();
        for s in &series {
            assert!(
                s.values.iter().all(|&v| v > 0.0),
                "{} went non-positive",
                s.name
            );
        }
    }

    #[test]
    fn initial_prices_span_a_wide_range() {
        let series = MarketSimulator::new(MarketConfig::small(200, 2, 11)).generate();
        let min = series
            .iter()
            .map(|s| s.values[0])
            .fold(f64::INFINITY, f64::min);
        let max = series
            .iter()
            .map(|s| s.values[0])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 20.0, "price spread too narrow: {min}..{max}");
    }

    #[test]
    fn daily_log_returns_have_plausible_scale() {
        let cfg = MarketConfig::small(10, 500, 3);
        let expect_vol = cfg.annual_volatility * (1.0f64 / 252.0).sqrt();
        let series = MarketSimulator::new(cfg).generate();
        let mut rets = Vec::new();
        for s in &series {
            for w in s.values.windows(2) {
                rets.push((w[1] / w[0]).ln());
            }
        }
        let mean = rets.iter().sum::<f64>() / rets.len() as f64;
        let var = rets.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / rets.len() as f64;
        let vol = var.sqrt();
        assert!(
            (vol / expect_vol - 1.0).abs() < 0.15,
            "volatility {vol} vs configured {expect_vol}"
        );
    }

    #[test]
    fn stocks_are_positively_correlated_through_the_market_factor() {
        let series = MarketSimulator::new(MarketConfig::small(40, 400, 5)).generate();
        let rets: Vec<Vec<f64>> = series
            .iter()
            .map(|s| s.values.windows(2).map(|w| (w[1] / w[0]).ln()).collect())
            .collect();
        let corr = |a: &[f64], b: &[f64]| -> f64 {
            let n = a.len() as f64;
            let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
            let cov = a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - ma) * (y - mb))
                .sum::<f64>();
            let va = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>();
            let vb = b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>();
            cov / (va * vb).sqrt()
        };
        let mut acc = 0.0;
        let mut cnt = 0;
        for i in 0..10 {
            for j in i + 1..10 {
                acc += corr(&rets[i], &rets[j]);
                cnt += 1;
            }
        }
        let avg = acc / cnt as f64;
        // β = 0.55 ⇒ pairwise correlation ≈ β² ≈ 0.30.
        assert!(avg > 0.15 && avg < 0.5, "average correlation {avg}");
    }

    #[test]
    #[should_panic(expected = "market beta")]
    fn invalid_beta_rejected() {
        let mut cfg = MarketConfig::small(2, 10, 0);
        cfg.market_beta = 1.0;
        let _ = MarketSimulator::new(cfg);
    }
}
