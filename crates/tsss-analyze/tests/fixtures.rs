//! Pinned expectations for every rule, against the fixture sources in
//! `tests/fixtures/`. Each case asserts the **exact** (rule id, line) set a
//! fixture produces — a detector that drifts (new false positive, lost true
//! positive, shifted line attribution) fails here before it ever reaches
//! the workspace gate in `tests/workspace.rs`.

use tsss_analyze::rules::analyze_source;

/// Runs one fixture and asserts its exact findings and suppression count.
fn check(name: &str, src: &str, hot: bool, want: &[(&str, usize, &str)], want_allows: usize) {
    let (findings, allows) = analyze_source(name, src, hot);
    let got: Vec<(String, usize, String)> = findings
        .iter()
        .map(|f| (f.rule.id().to_string(), f.line, f.rule.key().to_string()))
        .collect();
    let want: Vec<(String, usize, String)> = want
        .iter()
        .map(|&(id, line, key)| (id.to_string(), line, key.to_string()))
        .collect();
    assert_eq!(got, want, "findings drifted for {name}");
    assert_eq!(allows, want_allows, "suppression count drifted for {name}");
}

#[test]
fn r1_panics_and_indexing() {
    // Flagged: unwrap, expect, panic!, bracket indexing, unreachable!.
    // Suppressed: one unwrap and one indexing under justified markers.
    // Exempt: the slice *type* `&mut [u32]` and the #[cfg(test)] module.
    check(
        "fixtures/panics.rs",
        include_str!("fixtures/panics.rs"),
        true,
        &[
            ("R1", 5, "panic"),
            ("R1", 6, "panic"),
            ("R1", 8, "panic"),
            ("R1", 10, "index"),
            ("R1", 31, "panic"),
        ],
        2,
    );
}

#[test]
fn r1_is_scoped_to_hot_path_crates() {
    let (findings, _) = analyze_source(
        "fixtures/panics.rs",
        include_str!("fixtures/panics.rs"),
        false,
    );
    assert!(
        findings.is_empty(),
        "R1 must not fire outside hot-path crates: {findings:?}"
    );
}

#[test]
fn r2_id_like_casts() {
    // Flagged: `id`/`offset`/`len` operands under a bare `as`.
    // Suppressed: the marked widening. Unrelated float math is ignored.
    check(
        "fixtures/casts.rs",
        include_str!("fixtures/casts.rs"),
        true,
        &[("R2", 5, "cast"), ("R2", 6, "cast"), ("R2", 7, "cast")],
        1,
    );
}

#[test]
fn r3_atomics_justification_and_mixing() {
    // Flagged: the bare load, and the `state` field for mixing
    // Acquire/Release without an atomics-mixed blessing.
    // Clean: same-line and line-above justifications, and the blessed
    // deliberately-mixed `flips` field.
    check(
        "fixtures/atomics.rs",
        include_str!("fixtures/atomics.rs"),
        false,
        &[("R3", 15, "atomics"), ("R3", 29, "atomics-mixed")],
        1,
    );
}

#[test]
fn r4_float_equality() {
    // Flagged: `== 0.5` and `!= 1.0` outside tests. Clean: the marked
    // exact-zero dispatch, integer comparisons, and the test module.
    check(
        "fixtures/float_eq.rs",
        include_str!("fixtures/float_eq.rs"),
        false,
        &[("R4", 5, "float-eq"), ("R4", 9, "float-eq")],
        1,
    );
}

#[test]
fn m0_malformed_markers_do_not_suppress() {
    // An empty justification and an unknown rule are both M0 findings, and
    // neither suppresses the unwraps they sit above; a prose mention of
    // the marker grammar is not a marker at all.
    check(
        "fixtures/markers.rs",
        include_str!("fixtures/markers.rs"),
        true,
        &[
            ("R1", 6, "panic"),
            ("R1", 8, "panic"),
            ("M0", 5, "marker"),
            ("M0", 7, "marker"),
        ],
        0,
    );
}

#[test]
fn r7_lock_discipline() {
    // Flagged: the seeded guard-across-fsync, the undeclared
    // snapshot → ingest nesting, the same-lock reacquisition, and
    // `publish` under a snapshot guard. Clean: the declared
    // ingest → snapshot order, publication under `lock_ingest`, I/O
    // after the guard's scope closes, and the #[cfg(test)] module.
    // Suppressed: one justified fsync-under-guard.
    check(
        "crates/tsss-server/src/flow_locks.rs",
        include_str!("fixtures/flow_locks.rs"),
        false,
        &[
            ("R7", 5, "lock-discipline"),
            ("R7", 11, "lock-discipline"),
            ("R7", 16, "lock-discipline"),
            ("R7", 28, "lock-discipline"),
        ],
        1,
    );
}

#[test]
fn r7_r8_are_scoped_to_concurrency_crates() {
    // The same source outside the hot-path + server scope produces
    // nothing: flow rules are scoped like R1/R2.
    let (findings, _) = analyze_source(
        "crates/tsss-bench/src/flow_locks.rs",
        include_str!("fixtures/flow_locks.rs"),
        false,
    );
    assert!(
        findings.is_empty(),
        "flow rules must not fire outside their scope: {findings:?}"
    );
}

#[test]
fn r8_result_discipline() {
    // Flagged: `let _ = call();` and a statement-terminated `.ok();`.
    // Clean: a named `.ok()` binding and a non-call `let _ = 5`.
    // Suppressed: one justified best-effort discard.
    check(
        "crates/tsss-core/src/result_discipline.rs",
        include_str!("fixtures/result_discipline.rs"),
        false,
        &[
            ("R8", 4, "result-discipline"),
            ("R8", 5, "result-discipline"),
        ],
        1,
    );
}

#[test]
fn r9_fsync_ordering() {
    // Flagged: the seeded apply-before-sync. Clean: log-then-apply in
    // order, and a replay path that never logs (out of R9's scope).
    // Suppressed: one justified out-of-order apply.
    check(
        "crates/tsss-storage/src/wal.rs",
        include_str!("fixtures/fsync_order.rs"),
        false,
        &[("R9", 5, "fsync-ordering")],
        1,
    );
}

#[test]
fn r9_is_scoped_to_wal_owning_files() {
    // The same source in a file that is not `wal.rs`/`durable.rs` is
    // outside the log-then-apply contract.
    let (findings, _) = analyze_source(
        "crates/tsss-storage/src/buffer.rs",
        include_str!("fixtures/fsync_order.rs"),
        false,
    );
    assert!(
        findings.is_empty(),
        "R9 must only fire in WAL-owning files: {findings:?}"
    );
}

#[test]
fn r6_stats_identity_doc_coverage() {
    // `mystery_field` is the only public field the doc block never names.
    check(
        "fixtures/stats.rs",
        include_str!("fixtures/stats.rs"),
        false,
        &[("R6", 11, "stats-identity")],
        0,
    );
}
