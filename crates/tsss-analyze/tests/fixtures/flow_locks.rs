//! R7 fixture: guard tracking, the lock-order table, publish discipline.

fn guard_across_fsync(s: &S, file: &std::fs::File) {
    let master = s.ingest.lock().unwrap();
    file.sync_all().unwrap();
    drop(master);
}

fn undeclared_nesting(s: &S) {
    let slot = s.snapshot.write().unwrap();
    let master = s.ingest.lock().unwrap();
}

fn same_lock_twice(s: &S) {
    let a = s.ingest.lock().unwrap();
    let b = s.ingest.lock().unwrap();
}

fn declared_order_is_clean(s: &S) {
    let master = s.ingest.lock().unwrap();
    let slot = s.snapshot.write().unwrap();
    drop(slot);
    drop(master);
}

fn publish_under_snapshot_guard(s: &S) {
    let slot = s.snapshot.read().unwrap();
    publish(s, 1);
}

fn publish_under_ingest_is_blessed(s: &S) {
    let master = lock_ingest(s);
    publish(s, &master);
}

fn scoped_guard_then_io(s: &S, file: &std::fs::File) {
    {
        let master = s.ingest.lock().unwrap();
    }
    file.sync_all().unwrap();
}

fn suppressed_fsync(s: &S, file: &std::fs::File) {
    let master = s.ingest.lock().unwrap();
    // analyze::allow(lock-discipline): fixture — deliberate fsync under the guard to pin the suppression path.
    file.sync_all().unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let g = state.ingest.lock().unwrap();
        std::fs::File::open("x").unwrap().sync_all().unwrap();
    }
}
