//! R3 fixture: atomic orderings need written justification, and one field
//! mixing several orderings is flagged once per field.
//! Never compiled — parsed by `tests/fixtures.rs` through `analyze_source`.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

struct Counters {
    hits: AtomicU64,
    state: AtomicU8,
    flips: AtomicU64,
}

impl Counters {
    fn unjustified(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn justified_same_line(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed); // Relaxed: monotone tally.
    }

    fn justified_line_above(&self) -> u64 {
        // Relaxed: reporting-only read of a monotone counter.
        self.hits.load(Ordering::Relaxed)
    }

    fn mixed_without_blessing(&self) {
        // Acquire pairs with the Release store below.
        let _ = self.state.load(Ordering::Acquire);
        // Release publishes the transition to the Acquire load above.
        self.state.store(1, Ordering::Release);
    }

    fn mixed_with_blessing(&self) {
        // analyze::allow(atomics-mixed): fixture — the Relaxed bump and the Acquire read deliberately disagree.
        self.flips.fetch_add(1, Ordering::Relaxed);
        // Acquire: see above.
        let _ = self.flips.load(Ordering::Acquire);
    }
}
