//! M0 fixture: malformed suppression markers are themselves findings.
//! Never compiled — parsed by `tests/fixtures.rs` through `analyze_source`.

fn bad_markers(xs: &[u32]) -> u32 {
    // analyze::allow(panic):
    let a = xs.first().unwrap();
    // analyze::allow(no-such-rule): the rule name does not exist.
    let b = xs.last().unwrap();
    a + b
}

fn prose_mention_is_not_a_marker(xs: &[u32]) -> u32 {
    // Writing about analyze::allow in prose, without a rule list, is fine.
    xs.iter().sum()
}
