//! R4 fixture: exact float comparison outside tests.
//! Never compiled — parsed by `tests/fixtures.rs` through `analyze_source`.

fn flagged(x: f64) -> bool {
    x == 0.5
}

fn flagged_ne(x: f64) -> bool {
    x != 1.0
}

fn suppressed(a: f64) -> bool {
    // analyze::allow(float-eq): fixture — exact-zero dispatch is the point.
    a == 0.0
}

fn integers_are_fine(n: u32) -> bool {
    n == 0
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_comparison_in_tests_is_exempt() {
        assert!(super::flagged(0.5));
        let y = 2.0_f64;
        assert!(y == 2.0);
    }
}
