//! R2 fixture: bare `as` casts on id/offset/length-like expressions.
//! Never compiled — parsed by `tests/fixtures.rs` through `analyze_source`.

fn flagged(id: u64, offset: u32, len: usize) -> usize {
    let a = id as usize;
    let b = offset as usize;
    let c = len as u32;
    a + b + c as usize
}

fn suppressed(offset: u32) -> usize {
    // analyze::allow(cast): fixture — u32 → usize widening is lossless here.
    offset as usize
}

fn unrelated(x: f64) -> f64 {
    // A float cast with no id/offset/length-ish name nearby is not R2's
    // business.
    let y = x * 2.0;
    y
}
