//! R9 fixture: the log-then-apply contract in WAL-owning files.

impl D {
    fn apply_before_sync(&mut self, p: &[u8]) -> io::Result<()> {
        self.engine.append_values(0, &[1.0])?;
        self.wal.append(p)
    }

    fn log_then_apply(&mut self, p: &[u8]) -> io::Result<()> {
        self.wal.append(p)?;
        apply(&mut self.engine);
        Ok(())
    }

    fn replay_never_logs(&mut self) {
        self.engine.append_values(0, &[1.0]);
    }

    fn suppressed(&mut self, p: &[u8]) -> io::Result<()> {
        // analyze::allow(fsync-ordering): fixture — deliberate apply-before-sync to pin the suppression path.
        self.engine.append_values(0, &[1.0])?;
        self.wal.append(p)
    }
}
