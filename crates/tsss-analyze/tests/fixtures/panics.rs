//! R1 fixture: panicking constructs and bracket indexing in hot-path code.
//! Never compiled — parsed by `tests/fixtures.rs` through `analyze_source`.

fn flagged(xs: &[u32], i: usize) -> u32 {
    let v = xs.first().unwrap();
    let w = xs.last().expect("non-empty");
    if i > xs.len() {
        panic!("out of range");
    }
    let direct = xs[i];
    v + w + direct
}

fn suppressed(xs: &[u32], i: usize) -> u32 {
    // analyze::allow(panic): fixture — the caller checked emptiness.
    let v = xs.first().unwrap();
    // analyze::allow(index): fixture — `i` was bounds-checked by the caller.
    let direct = xs[i];
    v + direct
}

fn not_indexing(xs: &mut [u32]) -> &mut [u32] {
    // A slice *type* must not count as indexing.
    let whole: &mut [u32] = xs;
    whole
}

fn unreachable_flagged(k: u8) -> u8 {
    match k {
        0 => 1,
        _ => unreachable!("fixture"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let xs = vec![1u32, 2];
        assert_eq!(xs[0], xs.first().copied().unwrap());
    }
}
