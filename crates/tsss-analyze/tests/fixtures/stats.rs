//! R6 fixture: every public `SearchStats` field must be named by the doc
//! block above the struct.
//! Never compiled — parsed by `tests/fixtures.rs` through `analyze_source`.

/// Per-query accounting. The identity covers candidates, verified and
/// false_alarms; elapsed measures wall-clock time.
pub struct SearchStats {
    pub candidates: u64,
    pub verified: u64,
    pub false_alarms: u64,
    pub mystery_field: u64,
    pub elapsed: u64,
}
