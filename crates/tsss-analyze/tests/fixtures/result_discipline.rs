//! R8 fixture: silently discarded `Result`s.

fn discards(file: &std::fs::File, p: &str) {
    let _ = file.sync_all();
    std::fs::remove_file(p).ok();
}

fn bindings_are_clean(p: &str) {
    let kept = std::fs::remove_file(p).ok();
    let _ = 5;
}

fn suppressed(p: &str) {
    // analyze::allow(result-discipline): fixture — deliberate best-effort discard to pin the suppression path.
    let _ = std::fs::remove_file(p);
}
