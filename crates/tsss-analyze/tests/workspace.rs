//! The workspace gate: `cargo test` fails if the real tree has findings.
//!
//! This is the same sweep `cargo run -p tsss-analyze` and the CI `analyze`
//! job perform, wired into the test suite so a plain `cargo test
//! --workspace` refuses panics, bare casts, unjustified atomics, float
//! equality, lock-discipline slips and hygiene drift the moment they
//! appear. `deny` findings fail outright; `warn` findings fail only when
//! they are not covered by the checked-in baseline
//! (`results/analyze-baseline.json`) — the burn-down backlog.

use std::path::Path;

use tsss_analyze::report::Severity;
use tsss_analyze::{analyze_workspace, baseline, find_workspace_root};

#[test]
fn workspace_is_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above tsss-analyze");
    let analysis = analyze_workspace(&root).expect("workspace scan");
    assert_eq!(
        analysis.deny_count(),
        0,
        "the invariant analyzer found deny-severity violations — run \
         `cargo run -p tsss-analyze` for the report:\n{}",
        analysis.render_text()
    );
    // Every warn finding must be in the checked-in baseline: the backlog
    // may only shrink (regenerate with `cargo run -p tsss-analyze -- \
    // --write-baseline` after fixing an entry).
    let text = std::fs::read_to_string(root.join("results/analyze-baseline.json"))
        .expect("checked-in results/analyze-baseline.json");
    let keys = baseline::parse(&text).expect("parse analyze-baseline.json");
    let fresh = baseline::diff(&analysis, &keys);
    assert!(
        fresh.is_empty(),
        "findings not covered by results/analyze-baseline.json — fix them \
         or (for accepted warn-severity debt) refresh the baseline:\n{}",
        fresh
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule.id(), f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The sweep really looked at the tree (a path bug would scan nothing
    // and vacuously pass).
    assert!(
        analysis.files_scanned > 50,
        "suspiciously few files scanned: {}",
        analysis.files_scanned
    );
    assert!(
        analysis.allows_used > 0,
        "the justified-suppression count should be nonzero"
    );
}

/// The baseline gate actually bites: a finding that is not in the
/// checked-in baseline shows up in the diff, and every baselined finding
/// is `warn` severity — `deny` findings are never grandfathered.
#[test]
fn baseline_diff_catches_new_findings_and_holds_only_warns() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above tsss-analyze");
    let mut analysis = analyze_workspace(&root).expect("workspace scan");
    let text = std::fs::read_to_string(root.join("results/analyze-baseline.json"))
        .expect("checked-in results/analyze-baseline.json");
    let keys = baseline::parse(&text).expect("parse analyze-baseline.json");

    // Every finding at HEAD is warn severity (deny count is asserted zero
    // in `workspace_is_clean`) and covered by the baseline.
    assert!(analysis
        .findings
        .iter()
        .all(|f| f.rule.severity() == Severity::Warn));

    // Inject a synthetic new finding: the diff must surface exactly it.
    analysis.findings.push(tsss_analyze::Finding {
        rule: tsss_analyze::Rule::LockDiscipline,
        path: "crates/tsss-server/src/routes.rs".to_string(),
        line: 1,
        message: "synthetic injected finding".to_string(),
        excerpt: String::new(),
    });
    let fresh = baseline::diff(&analysis, &keys);
    assert_eq!(fresh.len(), 1, "only the injected finding is new");
    assert_eq!(fresh[0].message, "synthetic injected finding");
}

/// The columnar read path added the slab leaf pages, the chunked kernels
/// and the scan read-ahead. Every one of those files must sit inside the
/// R1/R2 hot-path scope (and exist on disk, so a rename cannot silently
/// drop one from the sweep).
#[test]
fn columnar_hot_path_files_are_in_scope() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above tsss-analyze");
    let new_hot_files = [
        // Slab leaf pages and their bulk/query/nn consumers.
        "crates/tsss-index/src/node.rs",
        "crates/tsss-index/src/bulk.rs",
        "crates/tsss-index/src/query.rs",
        "crates/tsss-index/src/nn.rs",
        // Chunked kernels: fused moments, lane screens, fit entry points.
        "crates/tsss-geometry/src/vector.rs",
        "crates/tsss-geometry/src/scale_shift.rs",
        // Bulk page decode, CRC, and the scan read-ahead.
        "crates/tsss-storage/src/page.rs",
        "crates/tsss-storage/src/codec.rs",
        "crates/tsss-storage/src/readahead.rs",
        // The page-segmented window fetch and the sliding-prefix verifier.
        "crates/tsss-core/src/datafile.rs",
        "crates/tsss-core/src/pipeline.rs",
    ];
    for rel in new_hot_files {
        assert!(
            tsss_analyze::is_hot_path(rel),
            "{rel} must be in the analyzer's hot-path scope"
        );
        assert!(
            root.join(rel).is_file(),
            "{rel} is pinned as hot-path but no longer exists"
        );
    }
}
