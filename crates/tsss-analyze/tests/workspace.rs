//! The workspace gate: `cargo test` fails if the real tree has findings.
//!
//! This is the same sweep `cargo run -p tsss-analyze` and the CI `analyze`
//! job perform, wired into the test suite so a plain `cargo test
//! --workspace` refuses panics, bare casts, unjustified atomics, float
//! equality and hygiene drift the moment they appear.

use std::path::Path;

use tsss_analyze::{analyze_workspace, find_workspace_root};

#[test]
fn workspace_is_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above tsss-analyze");
    let analysis = analyze_workspace(&root).expect("workspace scan");
    assert!(
        analysis.findings.is_empty(),
        "the invariant analyzer found violations — run `cargo run -p \
         tsss-analyze` for the report:\n{}",
        analysis.render_text()
    );
    // The sweep really looked at the tree (a path bug would scan nothing
    // and vacuously pass).
    assert!(
        analysis.files_scanned > 50,
        "suspiciously few files scanned: {}",
        analysis.files_scanned
    );
    assert!(
        analysis.allows_used > 0,
        "the justified-suppression count should be nonzero"
    );
}

/// The columnar read path added the slab leaf pages, the chunked kernels
/// and the scan read-ahead. Every one of those files must sit inside the
/// R1/R2 hot-path scope (and exist on disk, so a rename cannot silently
/// drop one from the sweep).
#[test]
fn columnar_hot_path_files_are_in_scope() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above tsss-analyze");
    let new_hot_files = [
        // Slab leaf pages and their bulk/query/nn consumers.
        "crates/tsss-index/src/node.rs",
        "crates/tsss-index/src/bulk.rs",
        "crates/tsss-index/src/query.rs",
        "crates/tsss-index/src/nn.rs",
        // Chunked kernels: fused moments, lane screens, fit entry points.
        "crates/tsss-geometry/src/vector.rs",
        "crates/tsss-geometry/src/scale_shift.rs",
        // Bulk page decode, CRC, and the scan read-ahead.
        "crates/tsss-storage/src/page.rs",
        "crates/tsss-storage/src/codec.rs",
        "crates/tsss-storage/src/readahead.rs",
        // The page-segmented window fetch and the sliding-prefix verifier.
        "crates/tsss-core/src/datafile.rs",
        "crates/tsss-core/src/pipeline.rs",
    ];
    for rel in new_hot_files {
        assert!(
            tsss_analyze::is_hot_path(rel),
            "{rel} must be in the analyzer's hot-path scope"
        );
        assert!(
            root.join(rel).is_file(),
            "{rel} is pinned as hot-path but no longer exists"
        );
    }
}
