//! The workspace gate: `cargo test` fails if the real tree has findings.
//!
//! This is the same sweep `cargo run -p tsss-analyze` and the CI `analyze`
//! job perform, wired into the test suite so a plain `cargo test
//! --workspace` refuses panics, bare casts, unjustified atomics, float
//! equality and hygiene drift the moment they appear.

use std::path::Path;

use tsss_analyze::{analyze_workspace, find_workspace_root};

#[test]
fn workspace_is_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above tsss-analyze");
    let analysis = analyze_workspace(&root).expect("workspace scan");
    assert!(
        analysis.findings.is_empty(),
        "the invariant analyzer found violations — run `cargo run -p \
         tsss-analyze` for the report:\n{}",
        analysis.render_text()
    );
    // The sweep really looked at the tree (a path bug would scan nothing
    // and vacuously pass).
    assert!(
        analysis.files_scanned > 50,
        "suspiciously few files scanned: {}",
        analysis.files_scanned
    );
    assert!(
        analysis.allows_used > 0,
        "the justified-suppression count should be nonzero"
    );
}
