//! Test-region detection: which lines of a file are inside `#[cfg(test)]`
//! modules / items or `#[test]` functions.
//!
//! The panic-freedom and float-comparison rules only apply to production
//! code, so the analyzer must know where test code begins. Brace-depth
//! tracking over the lexer's comment-free code text is exact enough: a
//! test attribute arms a pending flag, the next `{` opens a test frame,
//! and every line whose start or end sits inside a test frame is masked.

use crate::lexer::ScannedLine;

/// Returns one flag per line: `true` when the line is (partly) inside a
/// `#[cfg(test)]` / `#[test]` region, or when the file itself carries an
/// inner `#![cfg(test)]`.
pub fn test_mask(lines: &[ScannedLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    // Stack of brace frames; `true` frames were opened by a test item.
    let mut frames: Vec<bool> = Vec::new();
    // A test attribute was seen and is waiting for its item's `{`.
    let mut pending_test = false;
    let mut file_test = false;
    // Attribute capture state: Some((text, bracket_depth, inner)) while
    // inside `#[…]` / `#![…]`.
    let mut attr: Option<(String, u32, bool)> = None;
    // `#` (and optional `!`) seen, waiting for `[`.
    let mut hash_pending: Option<bool> = None;

    for (li, line) in lines.iter().enumerate() {
        let start_in_test = file_test || pending_test || frames.iter().any(|&t| t);
        for c in line.code.chars() {
            if let Some((text, depth, inner)) = attr.as_mut() {
                match c {
                    '[' => {
                        *depth += 1;
                        text.push(c);
                    }
                    ']' => {
                        if *depth == 0 {
                            let is_inner = *inner;
                            let body = std::mem::take(text);
                            if is_test_attr(&body) {
                                if is_inner {
                                    file_test = true;
                                } else {
                                    pending_test = true;
                                }
                            }
                            attr = None;
                        } else {
                            *depth -= 1;
                            text.push(c);
                        }
                    }
                    _ => text.push(c),
                }
                continue;
            }
            if let Some(inner) = hash_pending {
                match c {
                    '!' if !inner => {
                        hash_pending = Some(true);
                    }
                    '[' => {
                        attr = Some((String::new(), 0, inner));
                        hash_pending = None;
                    }
                    c if c.is_whitespace() => {}
                    _ => hash_pending = None,
                }
                continue;
            }
            match c {
                '#' => hash_pending = Some(false),
                '{' => {
                    frames.push(pending_test);
                    pending_test = false;
                }
                '}' => {
                    frames.pop();
                }
                // An attribute followed by a braceless item (`#[cfg(test)]
                // use …;`) applies only up to the semicolon.
                ';' => pending_test = false,
                _ => {}
            }
        }
        let end_in_test = file_test || pending_test || frames.iter().any(|&t| t);
        mask[li] = start_in_test || end_in_test;
    }
    mask
}

/// Whether an attribute body (the text between `#[` and `]`) marks a test
/// item: `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` and friends.
/// `cfg_attr(test, …)` is deliberately *not* a test region — it merely
/// configures attributes and the item still compiles for production.
fn is_test_attr(body: &str) -> bool {
    let t = body.trim();
    if t == "test" || t.starts_with("test(") {
        return true;
    }
    (t.starts_with("cfg(") || t.starts_with("cfg (")) && contains_word(t, "test")
}

fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn mask_of(src: &str) -> Vec<bool> {
        test_mask(&scan(src))
    }

    #[test]
    fn cfg_test_mod_is_masked_to_its_closing_brace() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}";
        let m = mask_of(src);
        // The attribute line itself is also masked (the pending test
        // attribute is armed by the end of that line) — harmless, since
        // attribute lines carry no checkable expressions.
        assert_eq!(m, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_fn_attribute_masks_the_function_body() {
        let src = "#[test]\nfn t() {\n    x.unwrap();\n}\nfn prod() {}";
        let m = mask_of(src);
        assert!(m[1] && m[2] && m[3] && !m[4]);
    }

    #[test]
    fn cfg_attr_is_not_a_test_region() {
        let m = mask_of("#[cfg_attr(test, allow(dead_code))]\nfn f() {\n    body();\n}");
        assert!(!m[1] && !m[2]);
    }

    #[test]
    fn cfg_any_including_test_is_masked() {
        let m = mask_of("#[cfg(any(test, feature = \"x\"))]\nfn f() {\n    body();\n}");
        assert!(m[1] && m[2]);
    }

    #[test]
    fn braceless_cfg_test_item_does_not_leak() {
        let m = mask_of("#[cfg(test)]\nuse something::Test;\nfn prod() {\n    body();\n}");
        assert!(!m[2] && !m[3]);
    }

    #[test]
    fn word_test_in_identifiers_does_not_trigger() {
        let m = mask_of("#[cfg(feature = \"testing\")]\nfn f() {\n    body();\n}");
        assert!(!m[1] && !m[2]);
    }

    #[test]
    fn nested_items_inside_test_mod_stay_masked() {
        let src = "#[cfg(test)]\nmod tests {\n    struct H { x: u32 }\n    impl H { fn f(&self) { self.go(); } }\n}";
        let m = mask_of(src);
        assert!(m[2] && m[3] && m[4]);
    }
}
