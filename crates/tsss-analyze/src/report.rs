//! Findings, the analysis summary, and the human/JSON reports.

use std::fmt::Write as _;

/// The rule catalog. The `key` is what `analyze::allow(<key>)` markers
/// name; the `id` is the stable short id used in reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: panicking constructs (`unwrap`, `expect`, `panic!`,
    /// `unreachable!`, `todo!`, `unimplemented!`) in hot-path code.
    Panic,
    /// R1: bracket indexing (`xs[i]`) in hot-path code.
    Index,
    /// R2: bare `as` integer casts on id/offset/length-like expressions.
    Cast,
    /// R3: an atomic `Ordering::…` without a justification comment.
    Atomics,
    /// R3: one atomic field used with several different orderings.
    AtomicsMixed,
    /// R4: `==` / `!=` against a float literal or float constant.
    FloatEq,
    /// R5: crate-level hygiene (`#![forbid(unsafe_code)]`, workspace
    /// lint-table inheritance).
    CrateHygiene,
    /// R6: a `SearchStats` field not covered by the accounting-identity
    /// doc comment.
    StatsIdentity,
    /// A malformed `analyze::allow` marker (unknown rule, missing or
    /// empty justification).
    Marker,
}

impl Rule {
    /// Stable short id (`R1`–`R6`, `M0` for marker errors).
    pub fn id(self) -> &'static str {
        match self {
            Rule::Panic | Rule::Index => "R1",
            Rule::Cast => "R2",
            Rule::Atomics | Rule::AtomicsMixed => "R3",
            Rule::FloatEq => "R4",
            Rule::CrateHygiene => "R5",
            Rule::StatsIdentity => "R6",
            Rule::Marker => "M0",
        }
    }

    /// The name `analyze::allow(<name>)` markers use.
    pub fn key(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::Cast => "cast",
            Rule::Atomics => "atomics",
            Rule::AtomicsMixed => "atomics-mixed",
            Rule::FloatEq => "float-eq",
            Rule::CrateHygiene => "crate-hygiene",
            Rule::StatsIdentity => "stats-identity",
            Rule::Marker => "marker",
        }
    }

    /// Parses a marker rule name.
    pub fn from_key(key: &str) -> Option<Rule> {
        Some(match key {
            "panic" => Rule::Panic,
            "index" => Rule::Index,
            "cast" => Rule::Cast,
            "atomics" => Rule::Atomics,
            "atomics-mixed" => Rule::AtomicsMixed,
            "float-eq" => Rule::FloatEq,
            "crate-hygiene" => Rule::CrateHygiene,
            "stats-identity" => Rule::StatsIdentity,
            _ => return None,
        })
    }
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong, in one sentence.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// The result of analysing a workspace (or a fixture set).
#[derive(Debug, Default)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    /// Rust sources scanned.
    pub files_scanned: usize,
    /// `analyze::allow` markers that suppressed at least one finding.
    pub allows_used: usize,
}

impl Analysis {
    /// Canonical order: path, then line, then rule id.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule.id()).cmp(&(&b.path, b.line, b.rule.id())));
    }

    /// The human report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}: [{}/{}] {}\n    {}",
                f.path,
                f.line,
                f.rule.id(),
                f.rule.key(),
                f.message,
                f.excerpt
            );
        }
        let _ = writeln!(
            out,
            "tsss-analyze: {} finding(s) in {} file(s) scanned ({} allow marker(s) in effect)",
            self.findings.len(),
            self.files_scanned,
            self.allows_used
        );
        out
    }

    /// The machine-readable report (`results/analyze.json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"tool\": \"tsss-analyze\",");
        let _ = writeln!(
            out,
            "  \"version\": {},",
            json_str(env!("CARGO_PKG_VERSION"))
        );
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"allows_used\": {},", self.allows_used);
        let _ = writeln!(out, "  \"total_findings\": {},", self.findings.len());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"name\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"excerpt\": {}",
                json_str(f.rule.id()),
                json_str(f.rule.key()),
                json_str(&f.path),
                f.line,
                json_str(&f.message),
                json_str(&f.excerpt)
            );
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: Rule::Panic,
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "call to `.unwrap()`".into(),
            excerpt: "let x = \"a\\\"b\".len();".into(),
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut a = Analysis {
            findings: vec![finding()],
            files_scanned: 3,
            allows_used: 1,
        };
        a.sort();
        let j = a.render_json();
        assert!(j.contains("\"rule\": \"R1\""));
        assert!(j.contains("\"name\": \"panic\""));
        assert!(j.contains("\\\"b\\\""), "inner quotes must be escaped: {j}");
        assert!(j.contains("\"total_findings\": 1"));
    }

    #[test]
    fn empty_analysis_renders_empty_array() {
        let a = Analysis::default();
        let j = a.render_json();
        assert!(j.contains("\"findings\": []"), "{j}");
    }

    #[test]
    fn rule_keys_roundtrip() {
        for rule in [
            Rule::Panic,
            Rule::Index,
            Rule::Cast,
            Rule::Atomics,
            Rule::AtomicsMixed,
            Rule::FloatEq,
            Rule::CrateHygiene,
            Rule::StatsIdentity,
        ] {
            assert_eq!(Rule::from_key(rule.key()), Some(rule));
        }
        assert_eq!(Rule::from_key("bogus"), None);
    }

    #[test]
    fn text_report_names_rule_and_location() {
        let a = Analysis {
            findings: vec![finding()],
            files_scanned: 1,
            allows_used: 0,
        };
        let t = a.render_text();
        assert!(t.contains("crates/x/src/lib.rs:7: [R1/panic]"));
    }
}
