//! Findings, the analysis summary, and the human/JSON reports.

use std::fmt::Write as _;

/// The rule catalog. The `key` is what `analyze::allow(<key>)` markers
/// name; the `id` is the stable short id used in reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: panicking constructs (`unwrap`, `expect`, `panic!`,
    /// `unreachable!`, `todo!`, `unimplemented!`) in hot-path code.
    Panic,
    /// R1: bracket indexing (`xs[i]`) in hot-path code.
    Index,
    /// R2: bare `as` integer casts on id/offset/length-like expressions.
    Cast,
    /// R3: an atomic `Ordering::…` without a justification comment.
    Atomics,
    /// R3: one atomic field used with several different orderings.
    AtomicsMixed,
    /// R4: `==` / `!=` against a float literal or float constant.
    FloatEq,
    /// R5: crate-level hygiene (`#![forbid(unsafe_code)]`, workspace
    /// lint-table inheritance).
    CrateHygiene,
    /// R6: a `SearchStats` field not covered by the accounting-identity
    /// doc comment.
    StatsIdentity,
    /// R7: lock discipline — blocking I/O or an undeclared second lock
    /// acquisition while a guard is live, or a non-ingest guard held
    /// across `publish`/`respond`.
    LockDiscipline,
    /// R8: a `Result`-returning call discarded with `let _ =` or a
    /// statement-terminated `.ok()`.
    ResultDiscipline,
    /// R9: a state-mutating apply site that lexically precedes its WAL
    /// sync in `wal.rs`/`durable.rs` (the log-then-apply contract).
    FsyncOrdering,
    /// A malformed `analyze::allow` marker (unknown rule, missing or
    /// empty justification).
    Marker,
}

/// How a finding gates CI: `Deny` findings fail the run outright;
/// `Warn` findings are reported, land in the baseline, and only fail a
/// `--baseline` run when they are *new*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Deny,
    Warn,
}

impl Severity {
    /// The name used in reports (`deny` / `warn`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }

    /// The SARIF `level` GitHub code scanning expects.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Deny => "error",
            Severity::Warn => "warning",
        }
    }
}

impl Rule {
    /// Stable short id (`R1`–`R9`, `M0` for marker errors).
    pub fn id(self) -> &'static str {
        match self {
            Rule::Panic | Rule::Index => "R1",
            Rule::Cast => "R2",
            Rule::Atomics | Rule::AtomicsMixed => "R3",
            Rule::FloatEq => "R4",
            Rule::CrateHygiene => "R5",
            Rule::StatsIdentity => "R6",
            Rule::LockDiscipline => "R7",
            Rule::ResultDiscipline => "R8",
            Rule::FsyncOrdering => "R9",
            Rule::Marker => "M0",
        }
    }

    /// The name `analyze::allow(<name>)` markers use.
    pub fn key(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::Cast => "cast",
            Rule::Atomics => "atomics",
            Rule::AtomicsMixed => "atomics-mixed",
            Rule::FloatEq => "float-eq",
            Rule::CrateHygiene => "crate-hygiene",
            Rule::StatsIdentity => "stats-identity",
            Rule::LockDiscipline => "lock-discipline",
            Rule::ResultDiscipline => "result-discipline",
            Rule::FsyncOrdering => "fsync-ordering",
            Rule::Marker => "marker",
        }
    }

    /// Parses a marker rule name.
    pub fn from_key(key: &str) -> Option<Rule> {
        Some(match key {
            "panic" => Rule::Panic,
            "index" => Rule::Index,
            "cast" => Rule::Cast,
            "atomics" => Rule::Atomics,
            "atomics-mixed" => Rule::AtomicsMixed,
            "float-eq" => Rule::FloatEq,
            "crate-hygiene" => Rule::CrateHygiene,
            "stats-identity" => Rule::StatsIdentity,
            "lock-discipline" => Rule::LockDiscipline,
            "result-discipline" => Rule::ResultDiscipline,
            "fsync-ordering" => Rule::FsyncOrdering,
            _ => return None,
        })
    }

    /// The rule's severity. R8 (`result-discipline`) is the one `warn`
    /// rule: its legacy findings live in `results/analyze-baseline.json`
    /// and burn down over time; everything else is `deny` and fails the
    /// run the moment it appears.
    pub fn severity(self) -> Severity {
        match self {
            Rule::ResultDiscipline => Severity::Warn,
            _ => Severity::Deny,
        }
    }

    /// Every rule variant, for catalogs (SARIF `rules`, docs).
    pub const ALL: [Rule; 12] = [
        Rule::Panic,
        Rule::Index,
        Rule::Cast,
        Rule::Atomics,
        Rule::AtomicsMixed,
        Rule::FloatEq,
        Rule::CrateHygiene,
        Rule::StatsIdentity,
        Rule::LockDiscipline,
        Rule::ResultDiscipline,
        Rule::FsyncOrdering,
        Rule::Marker,
    ];

    /// One-line description for the SARIF rule catalog.
    fn describe(self) -> &'static str {
        match self {
            Rule::Panic => "no panicking constructs in hot-path code",
            Rule::Index => "no bracket indexing in hot-path code",
            Rule::Cast => "no bare `as` casts on id/offset/length-like expressions",
            Rule::Atomics => "every atomic Ordering carries a justification comment",
            Rule::AtomicsMixed => "one atomic field must not mix orderings unexplained",
            Rule::FloatEq => "no float ==/!= outside tests",
            Rule::CrateHygiene => "crate roots forbid unsafe code and inherit workspace lints",
            Rule::StatsIdentity => "every SearchStats field is covered by the identity doc",
            Rule::LockDiscipline => {
                "no blocking I/O or undeclared second lock acquisition while a guard is live"
            }
            Rule::ResultDiscipline => "no silently discarded Result-returning calls",
            Rule::FsyncOrdering => "WAL apply sites must lexically follow their sync call",
            Rule::Marker => "analyze::allow markers must be well-formed and justified",
        }
    }
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong, in one sentence.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// The result of analysing a workspace (or a fixture set).
#[derive(Debug, Default)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    /// Rust sources scanned.
    pub files_scanned: usize,
    /// `analyze::allow` markers that suppressed at least one finding.
    pub allows_used: usize,
}

impl Analysis {
    /// Canonical order: path, then line, then rule id.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule.id()).cmp(&(&b.path, b.line, b.rule.id())));
    }

    /// Number of `deny`-severity findings — the count a plain run gates on.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.rule.severity() == Severity::Deny)
            .count()
    }

    /// The human report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}: [{}/{}][{}] {}\n    {}",
                f.path,
                f.line,
                f.rule.id(),
                f.rule.key(),
                f.rule.severity().as_str(),
                f.message,
                f.excerpt
            );
        }
        let _ = writeln!(
            out,
            "tsss-analyze: {} finding(s) ({} deny, {} warn) in {} file(s) scanned \
             ({} allow marker(s) in effect)",
            self.findings.len(),
            self.deny_count(),
            self.findings.len() - self.deny_count(),
            self.files_scanned,
            self.allows_used
        );
        out
    }

    /// The machine-readable report (`results/analyze.json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"tool\": \"tsss-analyze\",");
        let _ = writeln!(
            out,
            "  \"version\": {},",
            json_str(env!("CARGO_PKG_VERSION"))
        );
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"allows_used\": {},", self.allows_used);
        let _ = writeln!(out, "  \"total_findings\": {},", self.findings.len());
        let _ = writeln!(out, "  \"deny_findings\": {},", self.deny_count());
        let _ = writeln!(
            out,
            "  \"warn_findings\": {},",
            self.findings.len() - self.deny_count()
        );
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"name\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"excerpt\": {}",
                json_str(f.rule.id()),
                json_str(f.rule.key()),
                json_str(f.rule.severity().as_str()),
                json_str(&f.path),
                f.line,
                json_str(&f.message),
                json_str(&f.excerpt)
            );
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The SARIF 2.1.0 report (`results/analyze.sarif`) in the shape
    /// GitHub code scanning ingests via `codeql-action/upload-sarif`:
    /// one run, a full rule catalog on the driver, one result per
    /// finding with a `physicalLocation` region. Severities map
    /// `deny` → `error` and `warn` → `warning`.
    pub fn render_sarif(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\","
        );
        let _ = writeln!(out, "  \"version\": \"2.1.0\",");
        out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
        let _ = writeln!(out, "          \"name\": \"tsss-analyze\",");
        let _ = writeln!(
            out,
            "          \"version\": {},",
            json_str(env!("CARGO_PKG_VERSION"))
        );
        out.push_str("          \"rules\": [");
        for (i, rule) in Rule::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n            {{\"id\": {}, \"name\": {}, \
                 \"shortDescription\": {{\"text\": {}}}, \
                 \"defaultConfiguration\": {{\"level\": {}}}}}",
                json_str(&sarif_rule_id(*rule)),
                json_str(rule.key()),
                json_str(rule.describe()),
                json_str(rule.severity().sarif_level())
            );
        }
        out.push_str("\n          ]\n        }\n      },\n");
        out.push_str("      \"results\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rule_index = Rule::ALL.iter().position(|r| *r == f.rule).unwrap_or(0);
            let _ = write!(
                out,
                "\n        {{\"ruleId\": {}, \"ruleIndex\": {rule_index}, \"level\": {}, \
                 \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": {}, \"uriBaseId\": \"%SRCROOT%\"}}, \
                 \"region\": {{\"startLine\": {}, \"snippet\": {{\"text\": {}}}}}}}}}]}}",
                json_str(&sarif_rule_id(f.rule)),
                json_str(f.rule.severity().sarif_level()),
                json_str(&f.message),
                json_str(&f.path),
                f.line,
                json_str(&f.excerpt)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }
}

/// SARIF rule ids must be unique; `R1` covers two detectors, so the
/// hierarchical `<id>/<key>` form (the convention GitHub's own analyzers
/// use, e.g. `js/sql-injection`) disambiguates.
fn sarif_rule_id(rule: Rule) -> String {
    format!("{}/{}", rule.id(), rule.key())
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: Rule::Panic,
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "call to `.unwrap()`".into(),
            excerpt: "let x = \"a\\\"b\".len();".into(),
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut a = Analysis {
            findings: vec![finding()],
            files_scanned: 3,
            allows_used: 1,
        };
        a.sort();
        let j = a.render_json();
        assert!(j.contains("\"rule\": \"R1\""));
        assert!(j.contains("\"name\": \"panic\""));
        assert!(j.contains("\\\"b\\\""), "inner quotes must be escaped: {j}");
        assert!(j.contains("\"total_findings\": 1"));
    }

    #[test]
    fn empty_analysis_renders_empty_array() {
        let a = Analysis::default();
        let j = a.render_json();
        assert!(j.contains("\"findings\": []"), "{j}");
    }

    #[test]
    fn rule_keys_roundtrip() {
        for rule in Rule::ALL {
            if rule == Rule::Marker {
                continue; // M0 is never a marker target
            }
            assert_eq!(Rule::from_key(rule.key()), Some(rule));
        }
        assert_eq!(Rule::from_key("bogus"), None);
    }

    #[test]
    fn text_report_names_rule_location_and_severity() {
        let a = Analysis {
            findings: vec![finding()],
            files_scanned: 1,
            allows_used: 0,
        };
        let t = a.render_text();
        assert!(t.contains("crates/x/src/lib.rs:7: [R1/panic][deny]"), "{t}");
        assert!(t.contains("(1 deny, 0 warn)"), "{t}");
    }

    #[test]
    fn severities_map_r8_to_warn_and_the_rest_to_deny() {
        assert_eq!(Rule::ResultDiscipline.severity(), Severity::Warn);
        for rule in Rule::ALL {
            if rule != Rule::ResultDiscipline {
                assert_eq!(rule.severity(), Severity::Deny, "{rule:?}");
            }
        }
        assert_eq!(Severity::Deny.sarif_level(), "error");
        assert_eq!(Severity::Warn.sarif_level(), "warning");
    }

    #[test]
    fn sarif_has_the_2_1_0_shape_github_ingests() {
        let mut warn = finding();
        warn.rule = Rule::ResultDiscipline;
        let a = Analysis {
            findings: vec![finding(), warn],
            files_scanned: 2,
            allows_used: 0,
        };
        let s = a.render_sarif();
        assert!(s.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"tsss-analyze\""));
        // Full rule catalog with unique hierarchical ids.
        assert!(s.contains("\"id\": \"R7/lock-discipline\""));
        assert!(s.contains("\"id\": \"R9/fsync-ordering\""));
        // One result per finding, severity-mapped levels, physical locations.
        assert!(s.contains("\"ruleId\": \"R1/panic\""));
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"level\": \"warning\""));
        assert!(s.contains("\"uri\": \"crates/x/src/lib.rs\""));
        assert!(s.contains("\"uriBaseId\": \"%SRCROOT%\""));
        assert!(s.contains("\"startLine\": 7"));
    }

    #[test]
    fn empty_sarif_renders_an_empty_results_array() {
        let s = Analysis::default().render_sarif();
        assert!(s.contains("\"results\": []"), "{s}");
    }
}
