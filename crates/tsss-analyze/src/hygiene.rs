//! R5: crate-level hygiene.
//!
//! Every crate in the workspace must
//! * declare `#![forbid(unsafe_code)]` at its crate root, and
//! * inherit the workspace lint table (`[lints] workspace = true` in its
//!   `Cargo.toml`).
//!
//! The workspace root `Cargo.toml` must additionally define the shared
//! `[workspace.lints.*]` table those crates inherit.

use std::path::Path;

use crate::lexer::scan;
use crate::report::{Finding, Rule};

/// Runs the R5 checks over `root` (the workspace directory). `crates`
/// holds the workspace-relative crate directories (e.g. `crates/tsss-core`
/// and `""` for the root package).
pub fn check_workspace_hygiene(root: &Path, crates: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();

    let root_toml_rel = "Cargo.toml";
    let root_toml = std::fs::read_to_string(root.join(root_toml_rel)).unwrap_or_default();
    if !root_toml.contains("[workspace.lints") && !toml_allows(&root_toml) {
        findings.push(Finding {
            rule: Rule::CrateHygiene,
            path: root_toml_rel.to_string(),
            line: 1,
            message: "workspace root Cargo.toml has no `[workspace.lints.*]` table".into(),
            excerpt: String::new(),
        });
    }

    for crate_dir in crates {
        let dir = if crate_dir.is_empty() {
            root.to_path_buf()
        } else {
            root.join(crate_dir)
        };
        let join_rel = |name: &str| -> String {
            if crate_dir.is_empty() {
                name.to_string()
            } else {
                format!("{crate_dir}/{name}")
            }
        };

        let toml_rel = join_rel("Cargo.toml");
        let toml = std::fs::read_to_string(dir.join("Cargo.toml")).unwrap_or_default();
        if !toml.is_empty() && !inherits_workspace_lints(&toml) && !toml_allows(&toml) {
            findings.push(Finding {
                rule: Rule::CrateHygiene,
                path: toml_rel,
                line: 1,
                message: "crate does not inherit the workspace lint table \
                          (`[lints] workspace = true`)"
                    .into(),
                excerpt: String::new(),
            });
        }

        // The crate root: src/lib.rs, or src/main.rs for pure binaries.
        let (root_file, root_rel) = if dir.join("src/lib.rs").is_file() {
            (dir.join("src/lib.rs"), join_rel("src/lib.rs"))
        } else if dir.join("src/main.rs").is_file() {
            (dir.join("src/main.rs"), join_rel("src/main.rs"))
        } else {
            continue;
        };
        let source = std::fs::read_to_string(&root_file).unwrap_or_default();
        if !forbids_unsafe(&source) && !source_allows(&source) {
            findings.push(Finding {
                rule: Rule::CrateHygiene,
                path: root_rel,
                line: 1,
                message: "crate root does not declare `#![forbid(unsafe_code)]`".into(),
                excerpt: String::new(),
            });
        }
    }
    findings
}

/// `[lints] workspace = true` (section or dotted form), comment-safe.
fn inherits_workspace_lints(toml: &str) -> bool {
    let mut in_lints = false;
    for line in toml.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
            continue;
        }
        if in_lints && line.replace(' ', "") == "workspace=true" {
            return true;
        }
        if line.replace(' ', "").starts_with("lints.workspace=true") {
            return true;
        }
    }
    false
}

/// The attribute must appear as real code (not in a comment or string).
fn forbids_unsafe(source: &str) -> bool {
    scan(source)
        .iter()
        .any(|l| l.code.replace(' ', "").contains("#![forbid(unsafe_code)]"))
}

fn source_allows(source: &str) -> bool {
    scan(source)
        .iter()
        .any(|l| l.comment.contains("analyze::allow(crate-hygiene)"))
}

fn toml_allows(toml: &str) -> bool {
    toml.lines()
        .any(|l| l.trim_start().starts_with('#') && l.contains("analyze::allow(crate-hygiene)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lints_inheritance_is_detected_in_both_forms() {
        assert!(inherits_workspace_lints(
            "[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n"
        ));
        assert!(inherits_workspace_lints("lints.workspace = true\n"));
        assert!(!inherits_workspace_lints("[package]\nname = \"x\"\n"));
        assert!(!inherits_workspace_lints("[lints]\n# workspace = true\n"));
    }

    #[test]
    fn forbid_unsafe_must_be_code_not_comment() {
        assert!(forbids_unsafe("#![forbid(unsafe_code)]\npub fn f() {}\n"));
        assert!(forbids_unsafe("#![ forbid( unsafe_code ) ]\n"));
        assert!(!forbids_unsafe(
            "// #![forbid(unsafe_code)]\npub fn f() {}\n"
        ));
        assert!(!forbids_unsafe("pub fn f() {}\n"));
    }
}
