//! Baseline diff mode: `--baseline results/analyze-baseline.json`.
//!
//! The baseline is a checked-in snapshot of the findings the team has
//! accepted (today: the legacy `warn`-severity `R8` discards in
//! `tsss-server`, burning down over time). In baseline mode the
//! analyzer still *reports* everything, but CI fails only on findings
//! that are **not** in the baseline — so a new lock-discipline slip
//! blocks the PR while the known backlog doesn't.
//!
//! A finding is identified by `(rule id, path, line)`. Line numbers make
//! the key brittle against unrelated edits above a baselined finding —
//! that is deliberate: a shifted finding re-surfaces and the author
//! either fixes it or refreshes the baseline with `--write-baseline`,
//! keeping the file honest. The file is written by the analyzer itself
//! (same JSON emitter), so regeneration is always byte-stable.
//!
//! Parsing is a purpose-built scanner for the analyzer's own output
//! shape, not a general JSON parser — the workspace is dependency-free
//! by charter. It tolerates whitespace/field-order changes but not
//! structural ones; a file that doesn't look like analyzer output is an
//! IO-class error (exit 2), never a silent empty baseline.

use std::collections::BTreeSet;

use crate::report::{Analysis, Finding};

/// A baseline identity: `(rule id, workspace-relative path, 1-based line)`.
pub type Key = (String, String, usize);

/// The key under which a finding is matched against the baseline.
pub fn key_of(f: &Finding) -> Key {
    (f.rule.id().to_string(), f.path.clone(), f.line)
}

/// Parses the `findings` array of a JSON report produced by
/// `render_json` (or `--write-baseline`) into a set of keys.
pub fn parse(text: &str) -> Result<BTreeSet<Key>, String> {
    let mut keys = BTreeSet::new();
    let arr = match extract_findings_array(text) {
        Some(a) => a,
        None => return Err("baseline has no \"findings\" array".to_string()),
    };
    for (i, obj) in split_objects(arr).into_iter().enumerate() {
        let rule = string_field(obj, "rule")
            .ok_or_else(|| format!("baseline finding {i} has no \"rule\" field"))?;
        let path = string_field(obj, "path")
            .ok_or_else(|| format!("baseline finding {i} has no \"path\" field"))?;
        let line = number_field(obj, "line")
            .ok_or_else(|| format!("baseline finding {i} has no \"line\" field"))?;
        keys.insert((rule, path, line));
    }
    Ok(keys)
}

/// Findings in `analysis` that are not covered by the baseline, in
/// report order.
pub fn diff<'a>(analysis: &'a Analysis, baseline: &BTreeSet<Key>) -> Vec<&'a Finding> {
    analysis
        .findings
        .iter()
        .filter(|f| !baseline.contains(&key_of(f)))
        .collect()
}

/// The text between the brackets of the top-level `"findings": [...]`
/// array.
fn extract_findings_array(text: &str) -> Option<&str> {
    let tag = "\"findings\"";
    let at = text.find(tag)?;
    let rest = &text[at + tag.len()..];
    let open = rest.find('[')?;
    let body = &rest[open + 1..];
    // Find the matching `]`, skipping strings (paths may contain any
    // character except the `"` the emitter escapes).
    let mut depth = 1usize;
    let mut in_str = false;
    let mut esc = false;
    for (i, c) in body.char_indices() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits an array body into its top-level `{...}` object slices.
fn split_objects(arr: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_str = false;
    let mut esc = false;
    for (i, c) in arr.char_indices() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' if !in_str => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = start.take() {
                        out.push(&arr[s..=i]);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// The string value of `"name": "..."` in an object slice, unescaping
/// the `\"` and `\\` sequences the emitter produces.
fn string_field(obj: &str, name: &str) -> Option<String> {
    let rest = after_field(obj, name)?;
    let rest = rest.strip_prefix('"')?;
    let mut value = String::new();
    let mut esc = false;
    for c in rest.chars() {
        if esc {
            value.push(c);
            esc = false;
        } else if c == '\\' {
            esc = true;
        } else if c == '"' {
            return Some(value);
        } else {
            value.push(c);
        }
    }
    None
}

/// The numeric value of `"name": 123` in an object slice.
fn number_field(obj: &str, name: &str) -> Option<usize> {
    let rest = after_field(obj, name)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// The text immediately after `"name":` (whitespace skipped).
fn after_field<'a>(obj: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\"");
    let at = obj.find(&tag)?;
    let rest = obj[at + tag.len()..].trim_start();
    let rest = rest.strip_prefix(':')?;
    Some(rest.trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Analysis, Finding, Rule};

    fn finding(rule: Rule, path: &str, line: usize) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: "m".to_string(),
            excerpt: "x".to_string(),
        }
    }

    fn analysis(findings: Vec<Finding>) -> Analysis {
        Analysis {
            findings,
            files_scanned: 1,
            allows_used: 0,
        }
    }

    #[test]
    fn roundtrips_through_the_json_emitter() {
        let a = analysis(vec![
            finding(Rule::ResultDiscipline, "crates/tsss-server/src/lib.rs", 168),
            finding(Rule::LockDiscipline, "crates/tsss-core/src/x.rs", 7),
        ]);
        let json = a.render_json();
        let keys = parse(&json).expect("parse own output");
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&(
            "R8".to_string(),
            "crates/tsss-server/src/lib.rs".to_string(),
            168
        )));
        assert!(keys.contains(&("R7".to_string(), "crates/tsss-core/src/x.rs".to_string(), 7)));
    }

    #[test]
    fn diff_reports_only_new_findings() {
        let old = analysis(vec![finding(Rule::ResultDiscipline, "a.rs", 1)]);
        let baseline = parse(&old.render_json()).unwrap();
        let new = analysis(vec![
            finding(Rule::ResultDiscipline, "a.rs", 1),
            finding(Rule::FsyncOrdering, "b.rs", 2),
        ]);
        let fresh = diff(&new, &baseline);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].path, "b.rs");
    }

    #[test]
    fn empty_findings_array_is_a_valid_empty_baseline() {
        let keys = parse("{\n  \"findings\": []\n}\n").unwrap();
        assert!(keys.is_empty());
    }

    #[test]
    fn structurally_alien_input_is_an_error_not_an_empty_baseline() {
        assert!(parse("not json at all").is_err());
        assert!(parse("{\"results\": []}").is_err());
    }

    #[test]
    fn escaped_quotes_in_messages_do_not_derail_the_scanner() {
        let text = "{\"findings\": [{\"rule\": \"R8\", \"path\": \"a.rs\", \
                    \"line\": 3, \"message\": \"drops \\\"Result\\\"\"}]}";
        let keys = parse(text).unwrap();
        assert!(keys.contains(&("R8".to_string(), "a.rs".to_string(), 3)));
    }
}
