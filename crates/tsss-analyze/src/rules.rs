//! The rule detectors (R1–R4, R6) and the `analyze::allow` marker
//! grammar. The flow-aware detectors (R7–R9) live in [`crate::flow`]
//! and are filtered through the same markers here.
//!
//! # Marker grammar
//!
//! ```text
//! // analyze::allow(<rule>[, <rule>…]): <justification>
//! // analyze::allow-file(<rule>[, <rule>…]): <justification>
//! ```
//!
//! A line marker suppresses the named rules on its own line, or — when it
//! sits on a comment-only line — on the next line. A file marker
//! suppresses the named rules in the whole file (for dense numeric
//! kernels where per-line markers would drown the code). The
//! justification text is mandatory and must be non-empty: an allow
//! without a written reason is itself a finding (`M0`).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::lexer::{scan, ScannedLine};
use crate::report::{Finding, Rule};
use crate::scope::test_mask;

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Identifier fragments that mark an expression as id/offset/length-like
/// for the cast rule (matched against `snake_case`/`CamelCase` segments).
const IDISH_SEGMENTS: [&str; 24] = [
    "id", "idx", "index", "offset", "off", "len", "length", "count", "pos", "page", "pages",
    "window", "seq", "series", "extent", "size", "slot", "dim", "depth", "stride", "cap",
    "capacity", "step", "steps",
];

/// Parsed allow markers for one file.
#[derive(Debug, Default)]
struct Allows {
    file: HashSet<Rule>,
    /// 0-based line → rules allowed on that line.
    line: HashMap<usize, HashSet<Rule>>,
    /// Malformed markers become findings.
    errors: Vec<(usize, String)>,
    /// Markers that suppressed at least one finding (file-level markers
    /// count once): `None` = file marker.
    used: std::cell::RefCell<HashSet<(Option<usize>, Rule)>>,
}

impl Allows {
    fn parse(lines: &[ScannedLine]) -> Allows {
        let mut allows = Allows::default();
        for (li, line) in lines.iter().enumerate() {
            let comment = &line.comment;
            let mut from = 0;
            while let Some(pos) = comment[from..].find("analyze::allow") {
                let start = from + pos;
                let rest = &comment[start + "analyze::allow".len()..];
                let (is_file, rest) = match rest.strip_prefix("-file") {
                    Some(r) => (true, r),
                    None => (false, rest),
                };
                // Prose mentions of the grammar (`analyze::allow` without a
                // parenthesised rule list, or with placeholder text such as
                // `<rule>`) are not markers and are skipped silently; a
                // malformed *actual* marker is reported below.
                let Some(rest) = rest.trim_start().strip_prefix('(') else {
                    from = start + 1;
                    continue;
                };
                let Some(close) = rest.find(')') else {
                    allows
                        .errors
                        .push((li, "marker rule list is not closed with `)`".into()));
                    from = start + 1;
                    continue;
                };
                let names = &rest[..close];
                if !names.chars().all(|c| {
                    c.is_ascii_lowercase() || c.is_ascii_digit() || matches!(c, '-' | ',' | ' ')
                }) {
                    from = start + 1;
                    continue;
                }
                let after = rest[close + 1..].trim_start();
                let Some(justification) = after.strip_prefix(':') else {
                    allows.errors.push((
                        li,
                        "marker is missing its `: <justification>` clause".into(),
                    ));
                    from = start + 1;
                    continue;
                };
                if justification.trim().is_empty() {
                    allows
                        .errors
                        .push((li, "marker justification must not be empty".into()));
                    from = start + 1;
                    continue;
                }
                for name in names.split(',') {
                    let name = name.trim();
                    match Rule::from_key(name) {
                        Some(rule) => {
                            if is_file {
                                allows.file.insert(rule);
                            } else {
                                allows.line.entry(li).or_default().insert(rule);
                            }
                        }
                        None => allows
                            .errors
                            .push((li, format!("marker names unknown rule `{name}`"))),
                    }
                }
                from = start + 1;
            }
        }
        allows
    }

    /// Is `rule` allowed on 0-based line `li`? (Checks the line itself,
    /// a comment-only line directly above, and file markers.)
    fn allows(&self, lines: &[ScannedLine], li: usize, rule: Rule) -> bool {
        if self.file.contains(&rule) {
            self.used.borrow_mut().insert((None, rule));
            return true;
        }
        if self.line.get(&li).is_some_and(|s| s.contains(&rule)) {
            self.used.borrow_mut().insert((Some(li), rule));
            return true;
        }
        if li > 0
            && lines[li - 1].code.trim().is_empty()
            && self.line.get(&(li - 1)).is_some_and(|s| s.contains(&rule))
        {
            self.used.borrow_mut().insert((Some(li - 1), rule));
            return true;
        }
        false
    }

    fn used_count(&self) -> usize {
        self.used.borrow().len()
    }
}

/// Analyses one Rust source file. `hot` enables the hot-path-only rules
/// (R1 panic-freedom and R2 cast safety). Returns the findings plus the
/// number of allow markers that suppressed something.
pub fn analyze_source(rel_path: &str, source: &str, hot: bool) -> (Vec<Finding>, usize) {
    let lines = scan(source);
    let mask = test_mask(&lines);
    let raw_lines: Vec<&str> = source.lines().collect();
    let allows = Allows::parse(&lines);
    let mut findings = Vec::new();

    let excerpt = |li: usize| -> String {
        raw_lines
            .get(li)
            .map(|l| l.trim().chars().take(120).collect())
            .unwrap_or_default()
    };
    let mut push = |rule: Rule, li: usize, message: String, f: &mut Vec<Finding>| {
        if !allows.allows(&lines, li, rule) {
            f.push(Finding {
                rule,
                path: rel_path.to_string(),
                line: li + 1,
                message,
                excerpt: excerpt(li),
            });
        }
    };

    // Atomic usages collected for the mixed-ordering analysis:
    // field → ordering → first 0-based line seen.
    let mut atomics: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    let mut atomic_lines: BTreeMap<String, Vec<usize>> = BTreeMap::new();

    for (li, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let in_test = mask[li];
        let is_attr_line = code.trim_start().starts_with('#');

        if hot && !in_test {
            check_panics(code, li, &mut findings, &mut push);
            if !is_attr_line {
                check_indexing(code, li, &mut findings, &mut push);
                check_casts(code, li, &mut findings, &mut push);
            }
        }
        if !in_test {
            check_float_eq(code, li, &mut findings, &mut push);
            check_atomics(
                line,
                &lines,
                li,
                &mut findings,
                &mut push,
                &mut atomics,
                &mut atomic_lines,
            );
        }
    }

    // Mixed-ordering pass over the whole file.
    for (field, orderings) in &atomics {
        if orderings.len() <= 1 {
            continue;
        }
        let usage_lines = &atomic_lines[field];
        let suppressed = usage_lines
            .iter()
            .any(|&li| allows.allows(&lines, li, Rule::AtomicsMixed));
        if suppressed {
            continue;
        }
        let first = usage_lines[0];
        let list: Vec<String> = orderings
            .iter()
            .map(|(o, li)| format!("{o} (line {})", li + 1))
            .collect();
        findings.push(Finding {
            rule: Rule::AtomicsMixed,
            path: rel_path.to_string(),
            line: first + 1,
            message: format!(
                "atomic field `{field}` is used with mixed orderings: {}",
                list.join(", ")
            ),
            excerpt: excerpt(first),
        });
    }

    check_stats_identity(&lines, &mut findings, &mut push);

    // The flow-aware pass (R7/R8/R9) runs its own statement machine and
    // returns candidates; markers apply to them like any other detector.
    for ff in crate::flow::check_flow(rel_path, &lines, &mask) {
        push(ff.rule, ff.line, ff.message, &mut findings);
    }

    for (li, msg) in &allows.errors {
        findings.push(Finding {
            rule: Rule::Marker,
            path: rel_path.to_string(),
            line: li + 1,
            message: msg.clone(),
            excerpt: excerpt(*li),
        });
    }

    (findings, allows.used_count())
}

// ---------------------------------------------------------------------
// R1: panic-freedom
// ---------------------------------------------------------------------

fn check_panics(
    code: &str,
    li: usize,
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(Rule, usize, String, &mut Vec<Finding>),
) {
    for method in ["unwrap", "expect"] {
        for pos in word_positions(code, method) {
            if !preceded_by_dot(code, pos) {
                continue;
            }
            let after = &code[pos + method.len()..];
            if after.trim_start().starts_with('(') {
                push(
                    Rule::Panic,
                    li,
                    format!("call to `.{method}()` in hot-path code"),
                    findings,
                );
            }
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for pos in word_positions(code, mac) {
            // Exclude paths like `std::panic::catch_unwind`.
            let after = &code[pos + mac.len()..];
            if after.trim_start().starts_with('!') {
                push(
                    Rule::Panic,
                    li,
                    format!("`{mac}!` in hot-path code"),
                    findings,
                );
            }
        }
    }
}

fn check_indexing(
    code: &str,
    li: usize,
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(Rule, usize, String, &mut Vec<Finding>),
) {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        // Only the *immediately* adjacent form is indexing — rustfmt never
        // leaves `expr [i]`, while slice types (`&mut [u8]`) and array
        // literals after keywords always carry a space before `[`.
        let Some(&prev) = chars[..i].last() else {
            continue;
        };
        if prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']' {
            push(
                Rule::Index,
                li,
                "bracket indexing in hot-path code (can panic out of bounds)".into(),
                findings,
            );
        }
    }
}

// ---------------------------------------------------------------------
// R2: cast safety
// ---------------------------------------------------------------------

fn check_casts(
    code: &str,
    li: usize,
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(Rule, usize, String, &mut Vec<Finding>),
) {
    for pos in word_positions(code, "as") {
        let after = code[pos + 2..].trim_start();
        let ty: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !INT_TYPES.contains(&ty.as_str()) {
            continue;
        }
        // The expression context: this statement's text before the cast.
        let stmt = code[..pos].rsplit(';').next().unwrap_or("");
        let culprit = identifiers(stmt).into_iter().rev().find(|id| is_idish(id));
        if let Some(culprit) = culprit {
            push(
                Rule::Cast,
                li,
                format!(
                    "bare `as {ty}` cast on id/offset/length-like expression \
                     (near `{culprit}`); use `try_from`/`try_new` or justify"
                ),
                findings,
            );
        }
    }
}

fn is_idish(ident: &str) -> bool {
    segments(ident)
        .iter()
        .any(|s| IDISH_SEGMENTS.contains(&s.as_str()))
}

/// Splits `snake_case` and `CamelCase` identifiers into lowercase
/// segments: `subseq_id` → `[subseq, id]`, `PageId` → `[page, id]`.
fn segments(ident: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in ident.chars() {
        if c == '_' {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        } else if c.is_uppercase() {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            cur.extend(c.to_lowercase());
        } else {
            cur.push(c);
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------------------
// R3: atomics discipline
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn check_atomics(
    line: &ScannedLine,
    lines: &[ScannedLine],
    li: usize,
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(Rule, usize, String, &mut Vec<Finding>),
    atomics: &mut BTreeMap<String, BTreeMap<String, usize>>,
    atomic_lines: &mut BTreeMap<String, Vec<usize>>,
) {
    let code = line.code.as_str();
    let mut seen_calls: BTreeSet<usize> = BTreeSet::new();
    let mut found_any = false;
    let mut from = 0;
    while let Some(p) = code[from..].find("Ordering::") {
        let pos = from + p;
        let after = &code[pos + "Ordering::".len()..];
        let variant: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        from = pos + "Ordering::".len();
        if !ATOMIC_ORDERINGS.contains(&variant.as_str()) {
            continue;
        }
        found_any = true;
        // Attribute the ordering to `field.method(…)` when the call is on
        // this line (for the mixed-ordering analysis).
        if let Some((field, call_pos)) = atomic_call_target(code, pos) {
            // `compare_exchange(…, success, failure)` passes two orderings
            // in one call — only the first (success) one feeds the mixing
            // analysis, the pair itself is inherent to the API.
            if seen_calls.insert(call_pos) {
                atomics
                    .entry(field.clone())
                    .or_default()
                    .entry(variant.clone())
                    .or_insert(li);
                atomic_lines.entry(field).or_default().push(li);
            }
        }
    }
    if found_any {
        let justified = !line.comment.trim().is_empty()
            || (li > 0
                && lines[li - 1].code.trim().is_empty()
                && !lines[li - 1].comment.trim().is_empty());
        if !justified {
            push(
                Rule::Atomics,
                li,
                "atomic `Ordering::…` without a justification comment \
                 (same line or the line above)"
                    .into(),
                findings,
            );
        }
    }
}

/// For an `Ordering::` occurrence at `pos`, finds the innermost unclosed
/// call `field.method(` it is an argument of. Returns the atomic field
/// name and the call's opening-paren position.
fn atomic_call_target(code: &str, pos: usize) -> Option<(String, usize)> {
    let bytes = code.as_bytes();
    let mut stack: Vec<usize> = Vec::new();
    for (i, &b) in bytes.iter().enumerate().take(pos) {
        match b {
            b'(' => stack.push(i),
            b')' => {
                stack.pop();
            }
            _ => {}
        }
    }
    while let Some(open) = stack.pop() {
        let before = &code[..open];
        let method: String = before
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if !ATOMIC_METHODS.contains(&method.as_str()) {
            continue;
        }
        let rest = &before[..before.len() - method.len()];
        let rest = rest.trim_end();
        let rest = rest.strip_suffix('.')?;
        let field: String = rest
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if field.is_empty() {
            return None;
        }
        return Some((field, open));
    }
    None
}

// ---------------------------------------------------------------------
// R4: float equality
// ---------------------------------------------------------------------

fn check_float_eq(
    code: &str,
    li: usize,
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(Rule, usize, String, &mut Vec<Finding>),
) {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &code[i..i + 2];
        let is_eq = two == "==" || two == "!=";
        if !is_eq
            || (i > 0 && matches!(bytes[i - 1], b'=' | b'<' | b'>' | b'!'))
            || (i + 2 < bytes.len() && bytes[i + 2] == b'=')
        {
            i += 1;
            continue;
        }
        let left = token_before(code, i);
        let right = token_after(code, i + 2);
        if is_float_token(&left) || is_float_token(&right) {
            let op = two;
            push(
                Rule::FloatEq,
                li,
                format!("float `{op}` comparison outside tests (compare with a tolerance)"),
                findings,
            );
        }
        i += 2;
    }
}

fn token_before(code: &str, end: usize) -> String {
    let s = code[..end].trim_end();
    s.chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':'))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

fn token_after(code: &str, start: usize) -> String {
    code[start..]
        .trim_start()
        .trim_start_matches('-')
        .chars()
        .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':'))
        .collect()
}

fn is_float_token(token: &str) -> bool {
    if token.is_empty() {
        return false;
    }
    // Float constants compared for equality are as suspect as literals.
    for suffix in ["::NAN", "::INFINITY", "::NEG_INFINITY", "::EPSILON"] {
        if token.ends_with(suffix) && (token.contains("f64") || token.contains("f32")) {
            return true;
        }
    }
    let first = token.chars().next().unwrap_or(' ');
    if !first.is_ascii_digit() {
        return false;
    }
    if token.starts_with("0x") || token.starts_with("0b") || token.starts_with("0o") {
        return false;
    }
    if token.ends_with("f32") || token.ends_with("f64") {
        return true;
    }
    // A dot with digits on both sides (or a trailing dot) is a float
    // literal; integer tokens never contain `.`.
    token.contains('.') && token.chars().all(|c| c.is_ascii_digit() || c == '.')
        || (token.contains(['e', 'E'])
            && token
                .chars()
                .all(|c| c.is_ascii_digit() || matches!(c, 'e' | 'E' | '.' | '-' | '+')))
}

// ---------------------------------------------------------------------
// R6: the SearchStats accounting identity
// ---------------------------------------------------------------------

fn check_stats_identity(
    lines: &[ScannedLine],
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(Rule, usize, String, &mut Vec<Finding>),
) {
    let Some(struct_li) = lines
        .iter()
        .position(|l| l.code.contains("struct SearchStats"))
    else {
        return;
    };
    // The struct's doc block: contiguous comment/attribute lines above.
    let mut doc = String::new();
    let mut li = struct_li;
    while li > 0 {
        let prev = &lines[li - 1];
        let code = prev.code.trim();
        if code.is_empty() && !prev.comment.trim().is_empty() {
            doc.push_str(&prev.comment);
            doc.push('\n');
            li -= 1;
        } else if code.starts_with('#') {
            li -= 1;
        } else {
            break;
        }
    }
    // Walk the struct body at brace depth 1 and collect field names.
    let mut depth = 0i32;
    let mut entered = false;
    for (li, line) in lines.iter().enumerate().skip(struct_li) {
        let code = line.code.as_str();
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if entered && depth == 0 && li > struct_li {
            break;
        }
        if !(entered && depth == 1) {
            continue;
        }
        let trimmed = code.trim();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        let rest = if let Some(after) = rest.strip_prefix('(') {
            match after.find(')') {
                Some(p) => after[p + 1..].trim_start(),
                None => continue,
            }
        } else {
            rest
        };
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() || !rest[name.len()..].trim_start().starts_with(':') {
            continue;
        }
        if !contains_word(&doc, &name) {
            push(
                Rule::StatsIdentity,
                li,
                format!(
                    "`SearchStats` field `{name}` is not covered by the struct's \
                     accounting-identity doc comment — state whether it is part of \
                     `candidates == verified + false_alarms + cost_rejected` or why not"
                ),
                findings,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Small text helpers
// ---------------------------------------------------------------------

/// Byte positions where `word` occurs with identifier boundaries.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find(word) {
        let start = from + p;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

fn preceded_by_dot(code: &str, pos: usize) -> bool {
    code[..pos].trim_end().ends_with('.')
}

fn contains_word(text: &str, word: &str) -> bool {
    !word_positions(text, word).is_empty()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// All identifiers in `code`, in order.
fn identifiers(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in code.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.retain(|s| s.chars().next().is_some_and(|c| !c.is_ascii_digit()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_hot(src: &str) -> Vec<Finding> {
        analyze_source("x.rs", src, true).0
    }

    #[test]
    fn unwrap_in_hot_code_is_flagged_and_unwrap_or_is_not() {
        let f = run_hot("fn f() {\n    let a = x.unwrap();\n    let b = y.unwrap_or(0);\n}");
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (Rule::Panic, 2));
    }

    #[test]
    fn allow_marker_suppresses_and_counts() {
        let src = "fn f() {\n    let a = x.unwrap(); // analyze::allow(panic): infallible here\n}";
        let (f, used) = analyze_source("x.rs", src, true);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn marker_above_on_comment_line_applies_to_next_line() {
        let src =
            "fn f() {\n    // analyze::allow(panic): checked two lines up\n    let a = x.unwrap();\n}";
        let (f, _) = analyze_source("x.rs", src, true);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn empty_justification_is_a_marker_finding() {
        let src = "fn f() {\n    let a = x.unwrap(); // analyze::allow(panic):\n}";
        let f = run_hot(src);
        assert!(f.iter().any(|f| f.rule == Rule::Marker), "{f:?}");
    }

    #[test]
    fn unknown_rule_in_marker_is_a_finding() {
        let src = "fn f() {} // analyze::allow(bogus): whatever\n";
        let f = run_hot(src);
        assert!(f.iter().any(|f| f.rule == Rule::Marker));
    }

    #[test]
    fn indexing_is_flagged_but_types_and_macros_are_not() {
        let src = "fn f(v: &[f64]) -> f64 {\n    let a: [f64; 3] = [0.0; 3];\n    let x = vec![1, 2];\n    v[0]\n}";
        let f = run_hot(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].rule, f[0].line), (Rule::Index, 4));
    }

    #[test]
    fn idish_cast_is_flagged_and_float_cast_is_not() {
        let src = "fn f() {\n    let a = page_id as usize;\n    let b = n as f64;\n    let c = mass as u64;\n}";
        let f = run_hot(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].rule, f[0].line), (Rule::Cast, 2));
    }

    #[test]
    fn camel_case_cast_context_is_recognised() {
        let f = run_hot("fn f() {\n    let a = SubseqId::pack(x) as u32;\n}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Cast);
    }

    #[test]
    fn unjustified_ordering_is_flagged_commented_is_not() {
        let src = "fn f(a: &A) {\n    a.x.load(Ordering::Acquire); // pairs with the Release store\n    a.x.store(1, Ordering::Relaxed);\n}";
        let f: Vec<Finding> = analyze_source("x.rs", src, false)
            .0
            .into_iter()
            .filter(|f| f.rule == Rule::Atomics)
            .collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn mixed_orderings_on_one_field_are_flagged_once() {
        let src = "fn f(a: &A) {\n    // why: acquire pairs with release\n    a.state.load(Ordering::Acquire);\n    // why: relaxed is enough here\n    a.state.store(1, Ordering::Relaxed);\n    // why: independent counter\n    a.hits.fetch_add(1, Ordering::Relaxed);\n}";
        let f = analyze_source("x.rs", src, false).0;
        let mixed: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::AtomicsMixed).collect();
        assert_eq!(mixed.len(), 1, "{f:?}");
        assert!(mixed[0].message.contains("`state`"));
    }

    #[test]
    fn compare_exchange_pair_is_not_mixed() {
        let src = "fn f(a: &A) {\n    // CAS: success AcqRel, failure Acquire\n    a.s.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);\n}";
        let f = analyze_source("x.rs", src, false).0;
        assert!(
            f.iter().all(|f| f.rule != Rule::AtomicsMixed),
            "CAS success/failure pair must not count as mixed: {f:?}"
        );
    }

    #[test]
    fn float_eq_against_literal_and_nan_is_flagged() {
        let src = "fn f(x: f64) -> bool {\n    if x == 0.0 { return true; }\n    x != f64::NAN\n}";
        let f = analyze_source("x.rs", src, false).0;
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::FloatEq));
    }

    #[test]
    fn integer_comparisons_are_not_float_eq() {
        let src = "fn f(x: usize) -> bool {\n    x == 0 && x != 10 && x == 0x1F\n}";
        let f = analyze_source("x.rs", src, false).0;
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt_from_hot_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        x.unwrap();\n        let i = id as usize;\n        assert!(y == 0.5);\n    }\n}";
        let f = run_hot(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stats_identity_flags_undocumented_fields() {
        let src = "/// Stats. Identity: candidates == verified + false_alarms + cost_rejected.\n\
                   pub struct SearchStats {\n    pub candidates: u64,\n    pub verified: u64,\n    pub mystery: u64,\n}";
        let f = analyze_source("x.rs", src, false).0;
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].rule, f[0].line), (Rule::StatsIdentity, 5));
        assert!(f[0].message.contains("`mystery`"));
    }

    #[test]
    fn file_level_allow_covers_all_occurrences() {
        let src = "// analyze::allow-file(index): dense kernel, loops are len-bounded\n\
                   fn f(v: &[f64]) -> f64 { v[0] + v[1] + v[2] }";
        let (f, used) = analyze_source("x.rs", src, true);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(used, 1, "a file marker counts once");
    }
}
