//! The `tsss-analyze` binary: run the workspace invariant analyzer.
//!
//! ```text
//! tsss-analyze [--root <dir>] [--format text|json|sarif] [--out <file>]
//!              [--baseline <file>] [--write-baseline]
//! ```
//!
//! * Prints the human report (`--format text`, the default), the JSON
//!   report (`--format json`), or a SARIF 2.1.0 report (`--format sarif`,
//!   the shape GitHub code scanning ingests) to stdout.
//! * Always writes the machine-readable report to
//!   `<root>/results/analyze.json` (override with `--out`); with
//!   `--format sarif` it additionally writes
//!   `<root>/results/analyze.sarif`.
//! * `--baseline <file>` switches the gate to diff mode: the run fails
//!   only on findings absent from the checked-in baseline (plus any
//!   `deny` finding, baselined or not — deny findings are never
//!   grandfathered). `--write-baseline` regenerates the baseline file
//!   from the current findings.
//!
//! # Exit codes (part of the CLI contract — CI gates on them)
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean: no `deny` finding, and (in baseline mode) no finding outside the baseline |
//! | 1    | findings: a `deny` finding, or a new finding in baseline mode |
//! | 2    | usage or I/O error: bad flag, unreadable tree, malformed baseline |

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: tsss-analyze [--root <dir>] [--format text|json|sarif] \
[--out <file>] [--baseline <file>] [--write-baseline]

  --root <dir>       workspace root (default: nearest [workspace] above cwd)
  --format <fmt>     stdout report: text (default), json, or sarif (2.1.0)
  --out <file>       where the JSON report is written
                     (default: <root>/results/analyze.json)
  --baseline <file>  diff mode: fail only on findings not in <file>
                     (deny findings always fail, baselined or not)
  --write-baseline   regenerate <root>/results/analyze-baseline.json
                     (or the --baseline path) from the current findings

exit codes: 0 clean, 1 findings, 2 usage/IO error";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut out: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--format" => {
                if let Some(f) = args.next() {
                    format = f;
                }
            }
            "--out" => out = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tsss-analyze: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    if !matches!(format.as_str(), "text" | "json" | "sarif") {
        eprintln!("tsss-analyze: --format must be `text`, `json` or `sarif`, got `{format}`");
        return ExitCode::from(2);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("tsss-analyze: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match tsss_analyze::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "tsss-analyze: no workspace Cargo.toml found above {} (use --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match tsss_analyze::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tsss-analyze: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let json = analysis.render_json();
    let out_path = out.unwrap_or_else(|| root.join("results").join("analyze.json"));
    if let Err(e) = write_report(&out_path, &json) {
        eprintln!("tsss-analyze: {e}");
        return ExitCode::from(2);
    }
    if format == "sarif" {
        let sarif_path = root.join("results").join("analyze.sarif");
        if let Err(e) = write_report(&sarif_path, &analysis.render_sarif()) {
            eprintln!("tsss-analyze: {e}");
            return ExitCode::from(2);
        }
    }

    if write_baseline {
        let path = baseline_path
            .clone()
            .unwrap_or_else(|| root.join("results").join("analyze-baseline.json"));
        if let Err(e) = write_report(&path, &json) {
            eprintln!("tsss-analyze: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "tsss-analyze: wrote baseline with {} finding(s) to {}",
            analysis.findings.len(),
            path.display()
        );
    }

    match format.as_str() {
        "json" => print!("{json}"),
        "sarif" => print!("{}", analysis.render_sarif()),
        _ => print!("{}", analysis.render_text()),
    }

    // The gate. A regenerated baseline is by construction clean against
    // itself, so --write-baseline only fails on deny findings.
    let failed = if let Some(path) = &baseline_path {
        if write_baseline {
            analysis.deny_count() > 0
        } else {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("tsss-analyze: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let keys = match tsss_analyze::baseline::parse(&text) {
                Ok(k) => k,
                Err(e) => {
                    eprintln!("tsss-analyze: malformed baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let fresh = tsss_analyze::baseline::diff(&analysis, &keys);
            for f in &fresh {
                eprintln!(
                    "tsss-analyze: NEW finding (not in baseline): {}:{}: [{}/{}] {}",
                    f.path,
                    f.line,
                    f.rule.id(),
                    f.rule.key(),
                    f.message
                );
            }
            !fresh.is_empty() || analysis.deny_count() > 0
        }
    } else {
        analysis.deny_count() > 0
    };

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes `text` to `path`, creating parent directories.
fn write_report(path: &std::path::Path, text: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}
