//! The `tsss-analyze` binary: run the workspace invariant analyzer.
//!
//! ```text
//! tsss-analyze [--root <dir>] [--format text|json] [--out <file>]
//! ```
//!
//! * Prints the human report (`--format text`, the default) or the JSON
//!   report (`--format json`) to stdout.
//! * Always writes the machine-readable report to `<root>/results/analyze.json`
//!   (override with `--out`).
//! * Exits nonzero when there are findings, so CI and pre-push hooks can
//!   gate on it.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--format" => {
                if let Some(f) = args.next() {
                    format = f;
                }
            }
            "--out" => out = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: tsss-analyze [--root <dir>] [--format text|json] [--out <file>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tsss-analyze: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    if !matches!(format.as_str(), "text" | "json") {
        eprintln!("tsss-analyze: --format must be `text` or `json`, got `{format}`");
        return ExitCode::from(2);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("tsss-analyze: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match tsss_analyze::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "tsss-analyze: no workspace Cargo.toml found above {} (use --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match tsss_analyze::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tsss-analyze: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let json = analysis.render_json();
    let out_path = out.unwrap_or_else(|| root.join("results").join("analyze.json"));
    if let Some(dir) = out_path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("tsss-analyze: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("tsss-analyze: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }

    match format.as_str() {
        "json" => print!("{json}"),
        _ => print!("{}", analysis.render_text()),
    }

    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
