//! A minimal Rust source lexer: splits every line into *code* and
//! *comment* text, blanking out string/char literal contents so the rule
//! scanners never match tokens inside literals.
//!
//! This is deliberately not a full parser (no `syn`, no dependencies —
//! the workspace is offline). It understands exactly as much of Rust's
//! lexical grammar as the rules need:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments,
//! * string literals, raw strings (`r"…"`, `r#"…"#`, any hash depth),
//!   byte strings, and escapes,
//! * char literals vs. lifetimes (`'a'` vs. `'a`),
//!
//! Everything the lexer classifies as comment text is preserved (that is
//! where `analyze::allow` markers and justification comments live); string
//! literal contents are replaced with spaces so brackets, `as`, `==` and
//! friends inside them are invisible to the rules.

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone, Default)]
pub struct ScannedLine {
    /// The line's code characters, with string/char literal contents
    /// blanked to spaces (the delimiting quotes are kept).
    pub code: String,
    /// The line's comment text (contents of `//…` and `/*…*/` segments,
    /// without the comment markers themselves).
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    /// Nested block comments; the payload is the nesting depth.
    BlockComment(u32),
    /// Inside a `"…"` string; `true` while the next char is escaped.
    Str,
    /// Inside a raw string with the given number of `#` delimiters.
    RawStr(u32),
}

/// Splits `source` into per-line code and comment text.
pub fn scan(source: &str) -> Vec<ScannedLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = ScannedLine::default();
    let mut state = State::Normal;
    let mut i = 0usize;

    // Helper macro-free closures are awkward with the borrow of `cur`;
    // a plain indexed loop keeps the control flow obvious.
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                // Comment openers.
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw strings: r"…", r#"…"#, br"…", br#"…"# …
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    if let Some((hashes, skip)) = raw_string_open(&chars, i) {
                        cur.code.push('"');
                        state = State::RawStr(hashes);
                        i += skip;
                        continue;
                    }
                }
                // Plain strings (including byte strings: the `b` prefix was
                // already emitted as code).
                if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                // Char literal vs. lifetime.
                if c == '\'' {
                    if let Some(end) = char_literal_end(&chars, i) {
                        cur.code.push('\'');
                        for _ in i + 1..end {
                            cur.code.push(' ');
                        }
                        cur.code.push('\'');
                        i = end + 1;
                        continue;
                    }
                    // A lifetime: emit the quote and fall through.
                }
                cur.code.push(c);
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                cur.comment.push(c);
                i += 1;
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    // A `\` line continuation escapes the newline itself;
                    // leave the `\n` for the top-of-loop handler so every
                    // physical line stays one scanner line (line numbers
                    // and marker adjacency depend on it).
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                        continue;
                    }
                    if chars.get(i + 1).is_some() {
                        cur.code.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1;
                    continue;
                }
                cur.code.push(' ');
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1 + hashes as usize;
                    continue;
                }
                cur.code.push(' ');
                i += 1;
            }
        }
    }
    lines.push(cur);
    lines
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If position `i` opens a raw (byte) string, returns the hash depth and
/// how many chars the opener spans (`r#"` → 3).
fn raw_string_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If position `i` (a `'`) opens a char literal, returns the index of the
/// closing quote; `None` for lifetimes.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: scan to the next unescaped quote (handles
            // '\n', '\'', '\u{1F600}').
            let mut j = i + 2;
            while let Some(&c) = chars.get(j) {
                if c == '\'' {
                    return Some(j);
                }
                if c == '\n' {
                    return None;
                }
                j += 1;
            }
            None
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 2),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_split_out() {
        let lines = scan("let x = 1; // the answer .unwrap()");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert_eq!(lines[0].comment, " the answer .unwrap()");
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = code_of(r#"let s = "a[0].unwrap() as usize";"#);
        assert!(!lines[0].contains("unwrap"));
        assert!(!lines[0].contains("as usize"));
        assert!(lines[0].contains('"'));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = "let s = r#\"x == 1.0 \"quoted\" y[0]\"#; let t = a[0];";
        let lines = code_of(src);
        assert!(!lines[0].contains("=="));
        assert!(lines[0].contains("let t = a[0];"));
    }

    #[test]
    fn nested_block_comments_end_correctly() {
        let src = "/* outer /* inner */ still comment */ let x = a[0];";
        let lines = scan(src);
        assert!(lines[0].code.contains("let x = a[0];"));
        assert!(lines[0].comment.contains("inner"));
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let lines = code_of("fn f<'a>(x: &'a str) { let c = '['; let d = b'\\n'; }");
        assert!(lines[0].contains("<'a>"));
        assert!(!lines[0].contains('['), "char literal '[' must be blanked");
    }

    #[test]
    fn escaped_quote_in_string_does_not_end_it() {
        let lines = code_of(r#"let s = "a\"b[0]"; let t = c[1];"#);
        assert!(!lines[0].contains("b[0]"));
        assert!(lines[0].contains("c[1]"));
    }

    #[test]
    fn string_line_continuation_keeps_line_numbering() {
        // A `\` at end of line inside a string escapes the newline; the
        // scanner must still emit one ScannedLine per physical line, or
        // every finding and allow marker after it lands one line off.
        let src = "let s = \"first \\\n    second\";\nlet t = a[0];";
        let lines = scan(src);
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].code.contains("second"));
        assert!(lines[2].code.contains("let t = a[0];"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let lines = scan("let a = 1; /* start\n .unwrap() \n end */ let b = a[0];");
        assert!(lines[1].code.trim().is_empty());
        assert!(lines[1].comment.contains(".unwrap()"));
        assert!(lines[2].code.contains("let b = a[0];"));
    }
}
