//! The flow-aware pass: lock-guard tracking (R7), `Result` discipline
//! (R8) and WAL fsync ordering (R9).
//!
//! Unlike the line-local detectors in [`crate::rules`], these rules need
//! *state across lines*: which lock guards are live at a given
//! statement, and where in a function the WAL sync happens relative to
//! the engine mutation it covers. The pass stays lexical (no `syn` — the
//! workspace is offline): statements are physical lines joined until a
//! `;`/`{`/`}` terminator, guard scopes are brace-depth intervals, and
//! receivers are recovered by walking the expression text backwards.
//! rustfmt-formatted code makes this exact in practice; the known
//! limits (a guard smuggled through a helper's return value, I/O hidden
//! behind a method call) are documented in DESIGN.md §13.
//!
//! # R7 `lock-discipline`
//!
//! A guard is born by a `let` whose initializer acquires a lock —
//! `.lock()` / `.read()` / `.write()` (empty argument lists, so
//! `io::Read::read(&mut buf)` never matches), including the poison-
//! recovering `unwrap_or_else(PoisonError::into_inner)` chains and the
//! blessed `lock_ingest(..)` helper — and dies at `drop(guard)` or when
//! its brace scope closes. While any guard is live:
//!
//! * blocking I/O tokens (`sync_all`, `sync_data`, `fsync`, `File::`,
//!   `OpenOptions::`, `TcpStream::`, `save_to_path`, `remove_file`,
//!   `set_len`) are findings — an fsync under a lock stalls every peer;
//! * a second acquisition must follow the declared lock-order table
//!   ([`LOCK_ORDER`]); any undeclared pair — including re-acquiring the
//!   same lock, the self-deadlock — is a finding;
//! * `publish(`/`respond(` calls are findings unless every live guard
//!   is the ingest lock (publication is *defined* to run under the
//!   ingest lock; holding the snapshot lock there deadlocks on the
//!   swap, see DESIGN.md §15).
//!
//! # R8 `result-discipline`
//!
//! `let _ = call(..);` and statement-terminated `.ok();` silently drop
//! a `Result` in crates where every error is typed and recoverable.
//! Severity `warn`: legacy discards live in the checked-in baseline and
//! burn down; new ones fail `--baseline` CI.
//!
//! # R9 `fsync-ordering`
//!
//! In `wal.rs`/`durable.rs`, a function that both syncs the log
//! (`wal.append(`, `.sync_all(`, `.sync_data(`, `.log_then(`) and
//! mutates engine state (`apply(`, `.append_values(`, `.append_series(`)
//! must sync *first*: an apply token lexically before the function's
//! first sync token is a finding. Functions that never log (replay and
//! maintenance paths — their records are synced by construction) are
//! out of the rule's scope.

use crate::lexer::ScannedLine;
use crate::report::Rule;

/// A candidate finding from the flow pass. `rules::analyze_source`
/// filters these through the `analyze::allow` markers like any other
/// detector output.
#[derive(Debug)]
pub struct FlowFinding {
    pub rule: Rule,
    /// 0-based line the finding anchors to (markers attach here).
    pub line: usize,
    pub message: String,
}

/// Workspace-relative `src` prefixes where the concurrency rules
/// (R7/R8) run: the hot-path crates plus the server, i.e. every crate
/// that holds a lock or owns a `Result` on the request path.
pub const CONCURRENCY_PREFIXES: [&str; 5] = [
    "crates/tsss-core/src",
    "crates/tsss-storage/src",
    "crates/tsss-index/src",
    "crates/tsss-geometry/src",
    "crates/tsss-server/src",
];

/// Whether a workspace-relative path is in the R7/R8 scope.
pub fn is_concurrency_scope(rel_path: &str) -> bool {
    CONCURRENCY_PREFIXES
        .iter()
        .any(|p| rel_path.strip_prefix(p).is_some_and(|r| r.starts_with('/')))
}

/// Whether a path is in the R9 scope: the WAL and the durable engine,
/// the two files that own the log-then-apply contract (DESIGN.md §15).
pub fn is_fsync_scope(rel_path: &str) -> bool {
    is_concurrency_scope(rel_path)
        && rel_path
            .rsplit('/')
            .next()
            .is_some_and(|f| matches!(f, "wal.rs" | "durable.rs"))
}

/// The workspace's declared lock-order table: `(outer, inner)` pairs
/// that may nest. Everything else — in either direction — is a finding.
///
/// * `ingest → snapshot`: `publish` swaps the snapshot `Arc` while the
///   caller holds the ingest lock; the snapshot lock is the innermost
///   lock in the server, held only for the pointer swap. Taking the
///   ingest lock while holding the snapshot lock is the forbidden
///   deadlock direction (and would stall every reader behind ingest).
/// * `shard → store`: a buffer-pool miss fills the frame by reading the
///   store under the page's shard lock; the store `RwLock` is innermost
///   in the storage crate.
const LOCK_ORDER: [(&str, &str); 2] = [("ingest", "snapshot"), ("shard", "store")];

/// Guard-producing method calls. The empty argument list is the
/// disambiguator: `Mutex::lock()`, `RwLock::read()`/`write()` take no
/// arguments, while `io::Read::read(&mut buf)` and `io::Write::write(
/// &bytes)` always do.
const ACQUIRE_METHODS: [&str; 3] = [".lock()", ".read()", ".write()"];

/// Blessed acquisition helpers: call token → the lock it returns a
/// guard of. `lock_ingest` is the single sanctioned way to take the
/// server's ingest lock (poison recovery lives there, see `routes.rs`).
const ACQUIRE_HELPERS: [(&str, &str); 1] = [("lock_ingest(", "ingest")];

/// Blocking-I/O tokens for R7. Deliberately primitive-level (fsync,
/// file open, socket connect): engine-level helpers that are *designed*
/// to run under the ingest lock (e.g. `DurableEngine::save`) are not
/// listed — the rule polices the lock the design says must stay I/O
/// free, not the serialized writer.
const BLOCKING_IO: [&str; 9] = [
    ".sync_all(",
    ".sync_data(",
    "fsync(",
    "File::",
    "OpenOptions::",
    "TcpStream::",
    ".save_to_path(",
    "remove_file(",
    ".set_len(",
];

/// Calls that hand a result to readers; only the ingest guard may be
/// live across them.
const PUBLISH_CALLS: [&str; 2] = ["publish(", "respond("];

/// R9 sync tokens: the acknowledgement points of the log-then-apply
/// contract (`Wal::append` fsyncs internally; `log_then` logs before it
/// applies).
const R9_SYNC: [&str; 4] = ["wal.append(", ".sync_all(", ".sync_data(", ".log_then("];

/// R9 apply tokens: the calls that mutate engine state.
const R9_APPLY: [&str; 3] = ["apply(", ".append_values(", ".append_series("];

/// Runs every flow check that applies to `rel_path`. `mask` is the
/// test-region mask from [`crate::scope::test_mask`].
pub fn check_flow(rel_path: &str, lines: &[ScannedLine], mask: &[bool]) -> Vec<FlowFinding> {
    let mut out = Vec::new();
    if is_concurrency_scope(rel_path) {
        check_guards(lines, mask, &mut out);
    }
    if is_fsync_scope(rel_path) {
        check_fsync_order(lines, mask, &mut out);
    }
    out.sort_by_key(|f| (f.line, f.rule.id()));
    out
}

/// A live lock guard.
#[derive(Debug)]
struct Guard {
    /// Binding name (`drop(name)` kills it).
    name: String,
    /// Lock identity (the field/helper it came from).
    lock: String,
    /// Brace depth the binding lives at; the guard dies when the
    /// current depth drops below it.
    depth: i64,
    /// 0-based line of the binding, for messages.
    line: usize,
}

/// The R7/R8 statement machine: joins physical lines into statements,
/// tracks live guards by brace depth, and checks each statement against
/// the live set.
fn check_guards(lines: &[ScannedLine], mask: &[bool], out: &mut Vec<FlowFinding>) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i64 = 0;
    let mut stmt: Vec<(usize, &str)> = Vec::new();

    for (li, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if mask[li] {
            // Test code: statements are never checked, but braces still
            // nest and close scopes.
            stmt.clear();
            depth += brace_delta(code);
            guards.retain(|g| g.depth <= depth);
            continue;
        }
        if code.trim().is_empty() {
            continue;
        }
        stmt.push((li, code));
        let t = code.trim_end();
        let terminated = t.ends_with(';') || t.ends_with('{') || t.ends_with('}');
        if !terminated && stmt.len() < 40 {
            continue;
        }
        let depth_before = depth;
        for (_, frag) in &stmt {
            depth += brace_delta(frag);
        }
        check_statement(&stmt, depth_before, depth, &mut guards, out);
        guards.retain(|g| g.depth <= depth);
        stmt.clear();
    }
}

/// Net brace delta of one line of comment-free code.
fn brace_delta(code: &str) -> i64 {
    let mut d = 0i64;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

fn check_statement(
    stmt: &[(usize, &str)],
    depth_before: i64,
    depth_after: i64,
    guards: &mut Vec<Guard>,
    out: &mut Vec<FlowFinding>,
) {
    let joined: String = stmt
        .iter()
        .map(|(_, c)| c.trim())
        .collect::<Vec<_>>()
        .join(" ");
    let trimmed = joined.trim();
    let first_li = stmt[0].0;

    // R7b: every acquisition in this statement checked against the
    // guards live *before* it (one finding per acquisition, naming the
    // first conflicting guard).
    let acquired = acquisitions(stmt);
    for acq in &acquired {
        for g in guards.iter() {
            if g.lock == acq.lock {
                out.push(FlowFinding {
                    rule: Rule::LockDiscipline,
                    line: acq.line,
                    message: format!(
                        "lock `{}` is re-acquired while guard `{}` (line {}) already \
                         holds it — self-deadlock",
                        acq.lock,
                        g.name,
                        g.line + 1
                    ),
                });
                break;
            }
            if !LOCK_ORDER.contains(&(g.lock.as_str(), acq.lock.as_str())) {
                out.push(FlowFinding {
                    rule: Rule::LockDiscipline,
                    line: acq.line,
                    message: format!(
                        "lock `{}` is acquired while guard `{}` of `{}` (line {}) is \
                         live, but `{} -> {}` is not in the declared lock-order table",
                        acq.lock,
                        g.name,
                        g.lock,
                        g.line + 1,
                        g.lock,
                        acq.lock
                    ),
                });
                break;
            }
        }
    }

    // R7a + R7c: tokens in this statement against the live guards.
    if let Some(g) = guards.first() {
        for (li, frag) in stmt {
            for tok in BLOCKING_IO {
                if find_token(frag, tok) {
                    out.push(FlowFinding {
                        rule: Rule::LockDiscipline,
                        line: *li,
                        message: format!(
                            "blocking I/O `{}` while lock guard `{}` of `{}` (line {}) \
                             is live — drop the guard before the I/O",
                            tok.trim_matches(['.', '(', ':']),
                            g.name,
                            g.lock,
                            g.line + 1
                        ),
                    });
                }
            }
        }
    }
    if let Some(g) = guards.iter().find(|g| g.lock != "ingest") {
        for (li, frag) in stmt {
            for tok in PUBLISH_CALLS {
                if find_token(frag, tok) {
                    out.push(FlowFinding {
                        rule: Rule::LockDiscipline,
                        line: *li,
                        message: format!(
                            "`{}..)` is called while guard `{}` of `{}` (line {}) is \
                             live — only the ingest lock may be held across \
                             publication",
                            tok,
                            g.name,
                            g.lock,
                            g.line + 1
                        ),
                    });
                }
            }
        }
    }

    // R8: discarded Results.
    if let Some(rest) = trimmed.strip_prefix("let _ =") {
        if rest.contains('(') && trimmed.ends_with(';') {
            out.push(FlowFinding {
                rule: Rule::ResultDiscipline,
                line: first_li,
                message: "`let _ =` discards the call's `Result` — handle the error, or \
                          justify with analyze::allow(result-discipline)"
                    .into(),
            });
        }
    } else if trimmed.ends_with(".ok();") && !trimmed.contains('=') {
        out.push(FlowFinding {
            rule: Rule::ResultDiscipline,
            line: stmt[stmt.len() - 1].0,
            message: "statement-terminated `.ok()` silently drops the error — handle it, \
                      or justify with analyze::allow(result-discipline)"
                .into(),
        });
    }

    // drop(name) ends a guard early.
    for g_idx in (0..guards.len()).rev() {
        let pat = format!("drop({})", guards[g_idx].name);
        if find_token(trimmed, &pat) {
            guards.remove(g_idx);
        }
    }

    // A `let` binding whose initializer acquires a lock births a guard.
    // `if let` / `while let` bindings live inside the block they open;
    // a plain `let` (even over a `match`) lives at the statement's own
    // depth.
    if let Some(acq) = acquired.first() {
        if let Some(name) = let_binding_name(trimmed) {
            let scoped_inside = trimmed.starts_with("if ") || trimmed.starts_with("while ");
            guards.push(Guard {
                name,
                lock: acq.lock.clone(),
                depth: if scoped_inside {
                    depth_after
                } else {
                    depth_before
                },
                line: first_li,
            });
        }
    }
}

/// One lock acquisition found in a statement.
struct Acquisition {
    /// 0-based source line of the acquiring call.
    line: usize,
    /// Lock identity (receiver field or helper mapping).
    lock: String,
}

/// Finds every acquisition in the statement, attributing each to the
/// physical line its call token sits on. The receiver is recovered from
/// the statement text *up to* the token, so split method chains
/// (`state\n.snapshot\n.write()`) resolve correctly.
fn acquisitions(stmt: &[(usize, &str)]) -> Vec<Acquisition> {
    let mut out = Vec::new();
    let mut prefix = String::new();
    for (li, frag) in stmt {
        for method in ACQUIRE_METHODS {
            let mut from = 0;
            while let Some(p) = frag[from..].find(method) {
                let pos = from + p;
                let mut receiver = prefix.clone();
                receiver.push(' ');
                receiver.push_str(&frag[..pos]);
                if let Some(lock) = lock_name(&receiver) {
                    out.push(Acquisition { line: *li, lock });
                }
                from = pos + method.len();
            }
        }
        for (helper, lock) in ACQUIRE_HELPERS {
            if find_token(frag, helper) && !frag.contains("fn ") {
                out.push(Acquisition {
                    line: *li,
                    lock: (*lock).to_string(),
                });
            }
        }
        prefix.push(' ');
        prefix.push_str(frag.trim());
    }
    out
}

/// Extracts the lock identity from the receiver text before an
/// acquisition call: the trailing identifier after stripping one
/// trailing call-argument group — `state.ingest` → `ingest`,
/// `self.shard(id)` → `shard`, `store` → `store`.
fn lock_name(receiver: &str) -> Option<String> {
    let mut s = receiver.trim_end();
    s = s.strip_suffix('.').unwrap_or(s).trim_end();
    if s.ends_with(')') {
        let mut depth = 0usize;
        let mut cut = None;
        for (i, c) in s.char_indices().rev() {
            match c {
                ')' => depth += 1,
                '(' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        s = &s[..cut?];
        s = s.trim_end();
    }
    let name: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(name)
}

/// The binding name of a `let` statement, or `None` when there is no
/// binding to track (`let _`, destructuring of several names, no `let`).
/// Takes the last identifier of the pattern so `Ok(mut guard)` and
/// `mut guard` both resolve to `guard`.
fn let_binding_name(trimmed: &str) -> Option<String> {
    let let_pos = find_word(trimmed, "let")?;
    let after = &trimmed[let_pos + 3..];
    let eq = after.find('=')?;
    let pat = after[..eq].trim();
    let pat = pat.split(':').next().unwrap_or(pat); // strip a type ascription
    let mut last = None;
    for id in pat.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
        if !id.is_empty() && id != "mut" && id != "ref" {
            last = Some(id);
        }
    }
    let name = last?;
    if name == "_" {
        return None;
    }
    Some(name.to_string())
}

/// R9: per-function ordering of sync vs apply tokens, with the same
/// brace-frame machinery `scope.rs` uses for test regions.
fn check_fsync_order(lines: &[ScannedLine], mask: &[bool], out: &mut Vec<FlowFinding>) {
    struct FnInfo {
        sync_lines: Vec<usize>,
        apply_lines: Vec<usize>,
    }
    // One entry per open brace frame; `Some` frames were opened by `fn`.
    let mut frames: Vec<Option<FnInfo>> = Vec::new();
    let mut pending_fn = false;

    for (li, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if !mask[li] {
            // Attribute this line's tokens to the innermost enclosing
            // function (tokens on a `fn`'s own signature line belong to
            // the *outer* scope, which is what we want — signatures hold
            // no calls).
            if let Some(f) = frames.iter_mut().rev().find_map(|f| f.as_mut()) {
                if R9_SYNC.iter().any(|t| find_token(code, t)) {
                    f.sync_lines.push(li);
                }
                if R9_APPLY.iter().any(|t| find_token(code, t)) {
                    f.apply_lines.push(li);
                }
            }
            if find_word(code, "fn").is_some() {
                pending_fn = true;
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    frames.push(if std::mem::take(&mut pending_fn) {
                        Some(FnInfo {
                            sync_lines: Vec::new(),
                            apply_lines: Vec::new(),
                        })
                    } else {
                        None
                    });
                }
                '}' => {
                    if let Some(Some(f)) = frames.pop() {
                        if let Some(&first_sync) = f.sync_lines.first() {
                            for &a in &f.apply_lines {
                                if a < first_sync {
                                    out.push(FlowFinding {
                                        rule: Rule::FsyncOrdering,
                                        line: a,
                                        message: format!(
                                            "state-mutating apply precedes the function's \
                                             first WAL sync (line {}) — the log-then-apply \
                                             contract requires the sync first",
                                            first_sync + 1
                                        ),
                                    });
                                }
                            }
                        }
                    }
                }
                ';' => pending_fn = false,
                _ => {}
            }
        }
    }
}

/// Whether `code` contains `tok`, requiring an identifier boundary
/// before it when the token starts with an identifier character (so
/// `republish(` never matches `publish(`).
fn find_token(code: &str, tok: &str) -> bool {
    let first_is_ident = tok
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find(tok) {
        let start = from + p;
        if !first_is_ident
            || start == 0
            || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_')
        {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Byte position of `word` with identifier boundaries on both sides.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find(word) {
        let start = from + p;
        let end = start + word.len();
        let before_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let after_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::scope::test_mask;

    fn run(path: &str, src: &str) -> Vec<(String, usize, String)> {
        let lines = scan(src);
        let mask = test_mask(&lines);
        check_flow(path, &lines, &mask)
            .into_iter()
            .map(|f| (f.rule.id().to_string(), f.line + 1, f.message))
            .collect()
    }

    const SERVER: &str = "crates/tsss-server/src/x.rs";

    #[test]
    fn scope_is_hot_path_plus_server() {
        assert!(is_concurrency_scope("crates/tsss-core/src/engine.rs"));
        assert!(is_concurrency_scope("crates/tsss-server/src/routes.rs"));
        assert!(!is_concurrency_scope("crates/tsss-bench/src/lib.rs"));
        assert!(!is_concurrency_scope("crates/tsss-analyze/src/flow.rs"));
        assert!(is_fsync_scope("crates/tsss-storage/src/wal.rs"));
        assert!(is_fsync_scope("crates/tsss-core/src/durable.rs"));
        assert!(!is_fsync_scope("crates/tsss-core/src/engine.rs"));
    }

    #[test]
    fn fsync_under_a_live_guard_is_flagged_and_after_drop_is_not() {
        let src = "fn f(s: &S, file: &File) {\n\
                   \x20   let g = s.ingest.lock().unwrap_or_else(PoisonError::into_inner);\n\
                   \x20   file.sync_all()?;\n\
                   \x20   drop(g);\n\
                   \x20   file.sync_all()?;\n\
                   }\n";
        let f = run(SERVER, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].0.as_str(), f[0].1), ("R7", 3));
    }

    #[test]
    fn guard_scope_ends_at_the_closing_brace() {
        let src = "fn f(s: &S, file: &File) {\n\
                   \x20   {\n\
                   \x20       let g = s.ingest.lock()?;\n\
                   \x20   }\n\
                   \x20   file.sync_all()?;\n\
                   }\n";
        assert!(run(SERVER, src).is_empty());
    }

    #[test]
    fn declared_nesting_is_clean_and_undeclared_is_flagged() {
        let ok = "fn f(s: &S) {\n\
                  \x20   let master = s.ingest.lock()?;\n\
                  \x20   let slot = s.snapshot.write()?;\n\
                  }\n";
        assert!(run(SERVER, ok).is_empty(), "declared ingest -> snapshot");
        let bad = "fn f(s: &S) {\n\
                   \x20   let slot = s.snapshot.write()?;\n\
                   \x20   let master = s.ingest.lock()?;\n\
                   }\n";
        let f = run(SERVER, bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].0.as_str(), f[0].1), ("R7", 3));
        assert!(f[0].2.contains("not in the declared lock-order table"));
    }

    #[test]
    fn reacquiring_the_same_lock_is_a_self_deadlock_finding() {
        let src = "fn f(s: &S) {\n\
                   \x20   let a = s.state.lock()?;\n\
                   \x20   let b = s.state.lock()?;\n\
                   }\n";
        let f = run(SERVER, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("self-deadlock"));
    }

    #[test]
    fn split_method_chains_resolve_their_receiver() {
        let src = "fn f(s: &S) {\n\
                   \x20   let slot = s\n\
                   \x20       .snapshot\n\
                   \x20       .write()\n\
                   \x20       .unwrap_or_else(PoisonError::into_inner);\n\
                   \x20   let master = s.ingest.lock()?;\n\
                   }\n";
        let f = run(SERVER, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, 6, "acquisition line, not binding line");
        assert!(f[0].2.contains("`snapshot -> ingest`"), "{}", f[0].2);
    }

    #[test]
    fn sharded_miss_fill_pattern_is_clean() {
        // BufferPool::read's real shape: shard guard, then the store
        // read under it (a declared edge), method args never matching
        // the empty-parens acquisition tokens.
        let src = "fn read(&self, id: PageId) -> Result<Page, StorageError> {\n\
                   \x20   let mut shard = self.shard(id).lock().map_err(|_| E::Poisoned)?;\n\
                   \x20   let page = {\n\
                   \x20       let store = self.store.read().map_err(|_| E::Poisoned)?;\n\
                   \x20       store.read_uncounted(id)?\n\
                   \x20   };\n\
                   \x20   shard.insert_frame(id, page.clone(), false, &self.store)\n\
                   }\n";
        assert!(run("crates/tsss-storage/src/x.rs", src).is_empty());
    }

    #[test]
    fn publish_is_blessed_under_ingest_and_flagged_under_other_guards() {
        let ok = "fn f(s: &S) {\n\
                  \x20   let master = lock_ingest(s);\n\
                  \x20   publish(s, &master)?;\n\
                  }\n";
        assert!(run(SERVER, ok).is_empty());
        let bad = "fn f(s: &S) {\n\
                   \x20   let slot = s.snapshot.write()?;\n\
                   \x20   publish(s, 1)?;\n\
                   }\n";
        let f = run(SERVER, bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("only the ingest lock"));
    }

    #[test]
    fn result_discipline_flags_discards_but_not_bindings() {
        let src = "fn f(file: &File) {\n\
                   \x20   let _ = file.sync_all();\n\
                   \x20   std::fs::remove_file(p).ok();\n\
                   \x20   let kept = std::fs::remove_file(p).ok();\n\
                   \x20   let _ = 5;\n\
                   }\n";
        let f = run(SERVER, src);
        let r8: Vec<_> = f.iter().filter(|f| f.0 == "R8").collect();
        assert_eq!(r8.len(), 2, "{f:?}");
        assert_eq!((r8[0].1, r8[1].1), (2, 3));
    }

    #[test]
    fn test_code_is_exempt_from_flow_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(s: &S, file: &File) {\n        let g = s.a.lock().unwrap();\n        file.sync_all().unwrap();\n        let _ = file.sync_all();\n    }\n}\n";
        assert!(run(SERVER, src).is_empty());
    }

    #[test]
    fn apply_before_sync_is_flagged_and_log_then_apply_is_not() {
        let bad = "impl D {\n\
                   \x20   fn f(&mut self, p: &[u8]) -> io::Result<()> {\n\
                   \x20       self.engine.append_values(0, &[1.0])?;\n\
                   \x20       self.wal.append(p)\n\
                   \x20   }\n\
                   }\n";
        let f = run("crates/tsss-core/src/durable.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].0.as_str(), f[0].1), ("R9", 3));
        let ok = "impl D {\n\
                  \x20   fn f(&mut self, p: &[u8]) -> io::Result<()> {\n\
                  \x20       self.wal.append(p)?;\n\
                  \x20       apply(&mut self.engine);\n\
                  \x20       Ok(())\n\
                  \x20   }\n\
                  }\n";
        assert!(run("crates/tsss-core/src/durable.rs", ok).is_empty());
    }

    #[test]
    fn functions_that_never_log_are_outside_r9() {
        let src = "impl D {\n\
                   \x20   fn replay(&mut self) {\n\
                   \x20       self.engine.append_values(0, &[1.0]);\n\
                   \x20   }\n\
                   }\n";
        assert!(run("crates/tsss-core/src/durable.rs", src).is_empty());
    }

    #[test]
    fn torn_append_is_not_a_sync_token() {
        // `wal.append_torn_unsynced` must not satisfy the sync
        // requirement: only the fsyncing `wal.append(` counts.
        let src = "impl D {\n\
                   \x20   fn f(&mut self, p: &[u8]) {\n\
                   \x20       self.engine.append_values(0, &[1.0]);\n\
                   \x20       self.wal.append_torn_unsynced(p);\n\
                   \x20   }\n\
                   }\n";
        assert!(run("crates/tsss-core/src/durable.rs", src).is_empty());
    }
}
