//! `tsss-analyze`: the workspace's first-party static analyzer.
//!
//! A dependency-free line/token scanner (no `syn`, no network — the
//! workspace is offline) that walks every crate's `src` tree and enforces
//! the project's machine-checked invariants:
//!
//! | rule | name             | scope                 | what it enforces |
//! |------|------------------|-----------------------|------------------|
//! | R1   | `panic`, `index` | hot-path crates       | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` and no bracket indexing in non-test code |
//! | R2   | `cast`           | hot-path crates       | no bare `as` integer casts on id/offset/length-like expressions |
//! | R3   | `atomics`, `atomics-mixed` | all crates  | every atomic `Ordering::…` carries a justification comment; mixed orderings on one field are flagged |
//! | R4   | `float-eq`       | all crates            | no `==`/`!=` against float literals/constants outside tests |
//! | R5   | `crate-hygiene`  | all crates            | `#![forbid(unsafe_code)]` at each crate root; `[lints] workspace = true`; a root `[workspace.lints.*]` table |
//! | R6   | `stats-identity` | `SearchStats`         | every stats field is covered by the accounting-identity doc comment |
//! | R7   | `lock-discipline` | hot-path + server    | no blocking I/O and no undeclared second lock acquisition while a lock guard is live; only the ingest guard may be held across `publish`/`respond` |
//! | R8   | `result-discipline` | hot-path + server  | no `let _ =` / statement-terminated `.ok()` discard of a `Result`-returning call (`warn` severity — burns down via the baseline) |
//! | R9   | `fsync-ordering` | `wal.rs`, `durable.rs` | in a function that syncs the WAL, no state-mutating apply may lexically precede the first sync (the log-then-apply contract, DESIGN.md §15) |
//!
//! R1–R7 and R9 are `deny` severity (a finding fails the build); R8 is
//! `warn` (reported, and gated only through `--baseline` diff mode so the
//! legacy backlog burns down without blocking unrelated PRs).
//!
//! Violations are suppressed — never silently — with justification
//! markers (see [`rules`]): `analyze::allow(<rule>): <why>` on the line
//! (or the comment line above), or `analyze::allow-file(<rule>): <why>`
//! for a whole file. A marker without a written justification is itself a
//! finding.
//!
//! The hot-path crates are `tsss-core`, `tsss-storage`, `tsss-index` and
//! `tsss-geometry` — the crates on the query path, where a panic takes
//! down the whole engine instead of surfacing a typed
//! `EngineError`/`StorageError`.
//!
//! Run locally with `cargo run -p tsss-analyze`, or as part of the test
//! suite (`cargo test -p tsss-analyze`); CI runs it in `--baseline` mode
//! (fails only on findings not in `results/analyze-baseline.json`) and
//! uploads both `results/analyze.json` and a SARIF 2.1.0 report for
//! GitHub code scanning. Exit codes are part of the contract: 0 clean,
//! 1 findings, 2 usage/IO error.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]

pub mod baseline;
pub mod flow;
pub mod hygiene;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;

use std::path::{Path, PathBuf};

pub use report::{Analysis, Finding, Rule};

/// Workspace-relative `src` prefixes of the hot-path crates (R1/R2
/// scope).
pub const HOT_PATH_PREFIXES: [&str; 4] = [
    "crates/tsss-core/src",
    "crates/tsss-storage/src",
    "crates/tsss-index/src",
    "crates/tsss-geometry/src",
];

/// Whether a workspace-relative path is in the hot-path (R1/R2) scope.
pub fn is_hot_path(rel_path: &str) -> bool {
    HOT_PATH_PREFIXES
        .iter()
        .any(|p| rel_path.strip_prefix(p).is_some_and(|r| r.starts_with('/')))
}

/// Analyses the workspace rooted at `root`: every `crates/*/src/**/*.rs`
/// plus the root package's `src/**/*.rs`, the per-crate hygiene checks,
/// and the marker audit.
///
/// # Errors
/// Propagates I/O errors from walking and reading the tree.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut analysis = Analysis::default();
    let mut crate_dirs: Vec<String> = Vec::new();

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        entries.sort();
        for dir in entries {
            if let Some(name) = dir.file_name().and_then(|n| n.to_str()) {
                crate_dirs.push(format!("crates/{name}"));
            }
        }
    }
    if root.join("Cargo.toml").is_file() && root.join("src").is_dir() {
        crate_dirs.push(String::new()); // the root package
    }

    let mut sources = Vec::new();
    for crate_dir in &crate_dirs {
        let src = if crate_dir.is_empty() {
            root.join("src")
        } else {
            root.join(crate_dir).join("src")
        };
        collect_rust_files(&src, &mut sources)?;
    }
    sources.sort();

    for path in &sources {
        let rel = rel_path(root, path);
        let source = std::fs::read_to_string(path)?;
        let (mut findings, used) = rules::analyze_source(&rel, &source, is_hot_path(&rel));
        analysis.findings.append(&mut findings);
        analysis.allows_used += used;
        analysis.files_scanned += 1;
    }

    analysis
        .findings
        .extend(hygiene::check_workspace_hygiene(root, &crate_dirs));
    analysis.sort();
    Ok(analysis)
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let toml = d.join("Cargo.toml");
        if toml.is_file() {
            if let Ok(text) = std::fs::read_to_string(&toml) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_path_scope_is_the_four_query_path_crates() {
        assert!(is_hot_path("crates/tsss-core/src/engine.rs"));
        // Scatter-gather fan-out and merge run on every sharded query:
        // the sharded module is hot-path like the engine it multiplexes.
        assert!(is_hot_path("crates/tsss-core/src/sharded.rs"));
        assert!(is_hot_path("crates/tsss-storage/src/buffer.rs"));
        // The WAL sits on the acknowledged-append path: its scan/replay
        // code must stay panic-free like the rest of the storage crate.
        assert!(is_hot_path("crates/tsss-storage/src/wal.rs"));
        assert!(is_hot_path("crates/tsss-index/src/tree.rs"));
        assert!(is_hot_path("crates/tsss-geometry/src/mbr.rs"));
        assert!(!is_hot_path("crates/tsss-data/src/gbm.rs"));
        assert!(!is_hot_path("crates/tsss-bench/src/lib.rs"));
        assert!(!is_hot_path("src/lib.rs"));
        assert!(!is_hot_path("crates/tsss-core/tests/chaos.rs"));
        assert!(!is_hot_path("crates/tsss-core/srcx/foo.rs"));
    }
}
