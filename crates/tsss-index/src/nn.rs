//! Best-first nearest-neighbour search under point-to-line distance.
//!
//! Corollary 1 of the paper observes that the nearest neighbour of a query
//! `u` under scale-shift dissimilarity is the stored sequence whose shifting
//! line is closest to `u`'s scaling line — equivalently (Theorem 2), the
//! indexed SE/feature point closest to the query's SE-line. The paper defers
//! the algorithm for space reasons; we implement the standard
//! Hjaltason–Samet best-first traversal with a priority queue keyed by a
//! lower bound on the line-to-MBR distance.
//!
//! The lower bound `min_t dist(L(t), box)` is computed *exactly*:
//! `f(t) = dist²(L(t), box)` is a convex piecewise-quadratic function of `t`
//! whose breakpoints are the parameters where each coordinate of `L(t)`
//! crosses its slab boundary. Between consecutive breakpoints `f` is a
//! single quadratic; evaluating the minimum of each piece (clamped to the
//! piece) and taking the best yields the global minimum analytically.

// analyze::allow-file(index): the distance kernel indexes only `0..n` where `n = line.dim()` equals `mbr.dim()` by the caller's checked construction, plus positions taken from `breaks`/`pieces` vectors it just built.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tsss_geometry::line::{pld_sq, Line};
use tsss_geometry::Mbr;

use crate::error::IndexError;
use crate::node::Node;
use crate::query::Match;
use crate::tree::RTree;

/// Exact `min_t dist(L(t), box)`: zero when the line penetrates the box,
/// otherwise the global minimum of the convex piecewise-quadratic
/// `f(t) = Σᵢ clamp-residualᵢ(t)²`.
pub fn line_mbr_min_dist(line: &Line, mbr: &Mbr) -> f64 {
    if tsss_geometry::penetration::line_penetrates_mbr(line, mbr) {
        return 0.0;
    }
    let n = line.dim();
    let f = |t: f64| -> f64 {
        let mut acc = 0.0;
        for i in 0..n {
            let x = line.point[i] + t * line.dir[i];
            let e = if x < mbr.low()[i] {
                mbr.low()[i] - x
            } else if x > mbr.high()[i] {
                x - mbr.high()[i]
            } else {
                0.0
            };
            acc += e * e;
        }
        acc
    };

    // Breakpoints: every t where some coordinate of L(t) crosses its slab
    // boundary. Between consecutive breakpoints the active set is fixed and
    // f is one quadratic A·t² + B·t + C.
    let mut breaks: Vec<f64> = Vec::with_capacity(2 * n);
    for i in 0..n {
        let d = line.dir[i];
        // analyze::allow(float-eq): exact-zero test — a literally-zero direction component contributes no breakpoint (dividing by it is the only hazard); tiny components produce valid finite breakpoints.
        if d != 0.0 {
            breaks.push((mbr.low()[i] - line.point[i]) / d);
            breaks.push((mbr.high()[i] - line.point[i]) / d);
        }
    }
    if breaks.is_empty() {
        // Fully degenerate line: a single point.
        return f(0.0).sqrt();
    }
    #[allow(clippy::unwrap_used)]
    // analyze::allow(panic): breakpoints are (bound - point)/d with d != 0 over finite box/line coordinates, so no NaN can reach the comparator.
    breaks.sort_by(|a, b| a.partial_cmp(b).unwrap());
    breaks.dedup();

    let mut best = f64::INFINITY;
    // Evaluate each piece: (-∞, b₀], [b₀, b₁], …, [b_last, ∞). On a piece,
    // reconstruct the quadratic from the active residuals at its midpoint
    // and minimise it clamped to the piece. Unbounded end pieces are convex
    // and increasing away from the box, so their minima sit at the finite
    // end (already covered); still evaluate the breakpoints themselves.
    for &b in &breaks {
        best = best.min(f(b));
    }
    for w in breaks.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi - lo <= 0.0 {
            continue;
        }
        let mid = 0.5 * (lo + hi);
        // Quadratic coefficients from the residuals active at `mid`.
        let (mut qa, mut qb) = (0.0f64, 0.0f64);
        for i in 0..n {
            let x = line.point[i] + mid * line.dir[i];
            let (p, d) = (line.point[i], line.dir[i]);
            if x < mbr.low()[i] {
                // residual = low − p − t·d
                qa += d * d;
                qb += -2.0 * d * (mbr.low()[i] - p);
            } else if x > mbr.high()[i] {
                // residual = p + t·d − high
                qa += d * d;
                qb += 2.0 * d * (p - mbr.high()[i]);
            }
        }
        if qa > 0.0 {
            let t_star = -qb / (2.0 * qa);
            if t_star > lo && t_star < hi {
                best = best.min(f(t_star));
            }
        }
    }
    best.max(0.0).sqrt()
}

#[derive(Debug)]
enum HeapItem {
    Node {
        page: tsss_storage::PageId,
        bound: f64,
    },
    Point {
        entry: Match,
    },
}

impl HeapItem {
    fn key(&self) -> f64 {
        match self {
            HeapItem::Node { bound, .. } => *bound,
            HeapItem::Point { entry } => entry.distance,
        }
    }
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for smallest-first.
        other
            .key()
            .partial_cmp(&self.key())
            .unwrap_or(Ordering::Equal)
    }
}

impl RTree {
    /// The `k` indexed points nearest to `line` (ascending distance).
    ///
    /// Ties at equal distance are broken arbitrarily. Returns fewer than `k`
    /// matches when the tree holds fewer points.
    ///
    /// # Errors
    /// Any storage or decoding failure met during the traversal.
    pub fn nearest_to_line(&self, line: &Line, k: usize) -> Result<Vec<Match>, IndexError> {
        assert_eq!(line.dim(), self.config().dim, "line dimension mismatch");
        let mut out = Vec::with_capacity(k.min(self.len()));
        if k == 0 || self.is_empty() {
            return Ok(out);
        }
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem::Node {
            page: self.root_page(),
            bound: 0.0,
        });
        while let Some(item) = heap.pop() {
            match item {
                HeapItem::Point { entry } => {
                    out.push(entry);
                    if out.len() == k {
                        break;
                    }
                }
                HeapItem::Node { page, .. } => match self.read_node(page)? {
                    Node::Leaf(slab) => {
                        for (id, point) in slab.rows() {
                            let d = pld_sq(point, line).sqrt();
                            heap.push(HeapItem::Point {
                                entry: Match {
                                    id,
                                    point: point.to_vec(),
                                    distance: d,
                                },
                            });
                        }
                    }
                    Node::Internal(entries) => {
                        for e in entries {
                            heap.push(HeapItem::Node {
                                page: e.page,
                                bound: line_mbr_min_dist(line, &e.mbr),
                            });
                        }
                    }
                },
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{SplitPolicy, TreeConfig};

    fn cfg() -> TreeConfig {
        TreeConfig::uniform(2, 1024, 8, 3, 2, SplitPolicy::RStar, 0)
    }

    fn build(n: usize) -> (RTree, Vec<Vec<f64>>) {
        let mut t = RTree::new(cfg()).unwrap();
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![((i * 37) % 101) as f64, ((i * 61) % 97) as f64])
            .collect();
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        (t, pts)
    }

    #[test]
    fn bound_is_zero_for_penetrated_boxes() {
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let m = Mbr::new(vec![1.0, 1.0], vec![2.0, 2.0]).unwrap();
        assert_eq!(line_mbr_min_dist(&line, &m), 0.0);
    }

    #[test]
    fn bound_matches_hand_computed_distance() {
        // x-axis vs box [0,1]x[3,4]: distance 3.
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 0.0]).unwrap();
        let m = Mbr::new(vec![0.0, 3.0], vec![1.0, 4.0]).unwrap();
        let d = line_mbr_min_dist(&line, &m);
        assert!((d - 3.0).abs() < 1e-6, "got {d}");
    }

    #[test]
    fn bound_never_exceeds_distance_to_any_contained_point() {
        let line = Line::new(vec![-3.0, 2.0], vec![2.0, 0.7]).unwrap();
        let m = Mbr::new(vec![5.0, -8.0], vec![9.0, -4.0]).unwrap();
        let bound = line_mbr_min_dist(&line, &m);
        // Sample points of the box; all must be at least `bound` away.
        for i in 0..=10 {
            for j in 0..=10 {
                let p = [5.0 + 4.0 * i as f64 / 10.0, -8.0 + 4.0 * j as f64 / 10.0];
                assert!(pld_sq(&p, &line).sqrt() + 1e-9 >= bound);
            }
        }
    }

    #[test]
    fn nearest_one_matches_brute_force() {
        let (t, pts) = build(300);
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 0.85]).unwrap();
        let got = t.nearest_to_line(&line, 1).unwrap();
        assert_eq!(got.len(), 1);
        let best_brute = pts
            .iter()
            .map(|p| pld_sq(p, &line).sqrt())
            .fold(f64::INFINITY, f64::min);
        assert!((got[0].distance - best_brute).abs() < 1e-9);
    }

    #[test]
    fn nearest_k_is_sorted_and_matches_brute_force() {
        let (t, pts) = build(250);
        let line = Line::new(vec![10.0, -5.0], vec![0.3, 1.0]).unwrap();
        let k = 10;
        let got = t.nearest_to_line(&line, k).unwrap();
        assert_eq!(got.len(), k);
        for w in got.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-12);
        }
        let mut brute: Vec<f64> = pts.iter().map(|p| pld_sq(p, &line).sqrt()).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, b) in got.iter().zip(&brute) {
            assert!((g.distance - b).abs() < 1e-9);
        }
    }

    #[test]
    fn k_larger_than_tree_returns_everything() {
        let (t, pts) = build(20);
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let got = t.nearest_to_line(&line, 100).unwrap();
        assert_eq!(got.len(), pts.len());
    }

    #[test]
    fn k_zero_and_empty_tree() {
        let (t, _) = build(20);
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(t.nearest_to_line(&line, 0).unwrap().is_empty());
        let empty = RTree::new(cfg()).unwrap();
        assert!(empty.nearest_to_line(&line, 3).unwrap().is_empty());
    }

    #[test]
    fn best_first_visits_fewer_nodes_than_full_scan() {
        let (t, _) = build(600);
        t.stats().reset();
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let _ = t.nearest_to_line(&line, 1).unwrap();
        let nn_reads = t.stats().reads();
        t.stats().reset();
        let _ = t.dump().unwrap();
        let full_reads = t.stats().reads();
        assert!(
            nn_reads < full_reads,
            "NN visited {nn_reads} nodes, full scan {full_reads}"
        );
    }
}
