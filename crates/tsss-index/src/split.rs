//! Node-split algorithms: Guttman's linear and quadratic splits \[22\] and
//! the R*-tree topological split \[16\].
//!
//! All three operate on a parallel pair `(items, mbrs)` — the overflowing
//! node's entries and their bounding rectangles — and return the index sets
//! of the two groups. Working on indices keeps the algorithms agnostic to
//! whether the entries are data points or child rectangles.

// analyze::allow-file(index): the split kernels permute `0..mbrs.len()` — every index vector (`by_low`, `by_high`, seeds, groups) is built from that range, and the `total >= 2 * min_entries` asserts keep every cut point inside it.

// analyze::allow-file(panic): the `expect`s unwrap loop results that are `Some` whenever the asserted `total >= 2 * min_entries` precondition holds (dist_count >= 1, at least one axis/pair); they are restatements of the documented `# Panics` contract, not runtime conditions.

use tsss_geometry::Mbr;

/// Outcome of a split: indices of the entries assigned to each group.
/// Both groups respect the `m` lower bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitGroups {
    /// Indices (into the original entry slice) of group one.
    pub first: Vec<usize>,
    /// Indices of group two.
    pub second: Vec<usize>,
}

fn mbr_of_group(mbrs: &[Mbr], group: &[usize]) -> Mbr {
    let mut it = group.iter();
    let mut acc = mbrs[*it.next().expect("group is non-empty")].clone();
    for &i in it {
        acc.extend_mbr(&mbrs[i]);
    }
    acc
}

/// R*-tree split (Beckmann et al. §4.2):
/// 1. **ChooseSplitAxis** — for every axis, sort entries by lower then by
///    upper boundary and sum the margins of all legal distributions; pick
///    the axis with the least total margin.
/// 2. **ChooseSplitIndex** — along that axis, pick the distribution with the
///    least overlap between the two groups' MBRs, breaking ties by least
///    total area.
///
/// `min_entries` is the tree's `m`; every candidate distribution puts at
/// least `m` entries in each group.
pub fn rstar_split(mbrs: &[Mbr], min_entries: usize) -> SplitGroups {
    let total = mbrs.len();
    assert!(total >= 2 * min_entries, "not enough entries to split");
    let dim = mbrs[0].dim();

    // For each axis consider two sort orders (by low, by high); a
    // "distribution" k assigns the first (m − 1 + k) entries of the sorted
    // order to group one, k = 1 ..= M − 2m + 2.
    let dist_count = total - 2 * min_entries + 1;

    let mut best_axis = 0;
    let mut best_axis_margin = f64::INFINITY;
    let mut best_axis_orders: Option<[Vec<usize>; 2]> = None;

    for axis in 0..dim {
        let mut by_low: Vec<usize> = (0..total).collect();
        by_low.sort_by(|&a, &b| {
            mbrs[a].low()[axis]
                .partial_cmp(&mbrs[b].low()[axis])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    mbrs[a].high()[axis]
                        .partial_cmp(&mbrs[b].high()[axis])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
        });
        let mut by_high: Vec<usize> = (0..total).collect();
        by_high.sort_by(|&a, &b| {
            mbrs[a].high()[axis]
                .partial_cmp(&mbrs[b].high()[axis])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    mbrs[a].low()[axis]
                        .partial_cmp(&mbrs[b].low()[axis])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
        });

        let mut margin_sum = 0.0;
        for order in [&by_low, &by_high] {
            for k in 0..dist_count {
                let cut = min_entries + k;
                let g1 = mbr_of_group(mbrs, &order[..cut]);
                let g2 = mbr_of_group(mbrs, &order[cut..]);
                margin_sum += g1.margin() + g2.margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
            best_axis_orders = Some([by_low, by_high]);
        }
    }
    let _ = best_axis; // retained for debuggability via the assert below
    let orders = best_axis_orders.expect("at least one axis");

    // ChooseSplitIndex on the winning axis.
    let mut best: Option<(f64, f64, Vec<usize>, Vec<usize>)> = None;
    for order in &orders {
        for k in 0..dist_count {
            let cut = min_entries + k;
            let g1 = mbr_of_group(mbrs, &order[..cut]);
            let g2 = mbr_of_group(mbrs, &order[cut..]);
            let overlap = g1.overlap(&g2);
            let area = g1.volume() + g2.volume();
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => {
                    overlap < *bo - 1e-12 || ((overlap - *bo).abs() <= 1e-12 && area < *ba)
                }
            };
            if better {
                best = Some((overlap, area, order[..cut].to_vec(), order[cut..].to_vec()));
            }
        }
    }
    let (_, _, first, second) = best.expect("at least one distribution");
    SplitGroups { first, second }
}

/// Guttman's **quadratic** split: pick the pair of entries that would waste
/// the most area together as seeds, then repeatedly assign the entry with
/// the greatest preference for one group.
// Exact float equality implements Guttman's tie-breaks: "equal goodness"
// means the identical computed value, not a neighbourhood of it.
#[allow(clippy::float_cmp)]
pub fn quadratic_split(mbrs: &[Mbr], min_entries: usize) -> SplitGroups {
    let total = mbrs.len();
    assert!(total >= 2 * min_entries, "not enough entries to split");

    // PickSeeds: maximise d = area(J) − area(E1) − area(E2).
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for (i, mi) in mbrs.iter().enumerate() {
        for (j, mj) in mbrs.iter().enumerate().skip(i + 1) {
            let j_area = mi.union(mj).volume();
            let d = j_area - mi.volume() - mj.volume();
            if d > worst {
                worst = d;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut first = vec![seed_a];
    let mut second = vec![seed_b];
    let mut mbr1 = mbrs[seed_a].clone();
    let mut mbr2 = mbrs[seed_b].clone();
    let mut remaining: Vec<usize> = (0..total).filter(|&i| i != seed_a && i != seed_b).collect();

    while !remaining.is_empty() {
        // If one group must take everything left to reach m, do so.
        if first.len() + remaining.len() == min_entries {
            first.append(&mut remaining);
            break;
        }
        if second.len() + remaining.len() == min_entries {
            second.append(&mut remaining);
            break;
        }
        // PickNext: entry with maximum |d1 − d2|.
        let (mut pick_pos, mut pick_pref) = (0, f64::NEG_INFINITY);
        let mut pick_d = (0.0, 0.0);
        for (pos, &i) in remaining.iter().enumerate() {
            let d1 = mbr1.enlargement_for(&mbrs[i]);
            let d2 = mbr2.enlargement_for(&mbrs[i]);
            let pref = (d1 - d2).abs();
            if pref > pick_pref {
                pick_pref = pref;
                pick_pos = pos;
                pick_d = (d1, d2);
            }
        }
        let chosen = remaining.swap_remove(pick_pos);
        // Assign to the group needing least enlargement; ties → smaller
        // area, then fewer entries (Guttman's tie-breaks).
        let to_first = if pick_d.0 < pick_d.1 {
            true
        } else if pick_d.1 < pick_d.0 {
            false
        } else if mbr1.volume() != mbr2.volume() {
            mbr1.volume() < mbr2.volume()
        } else {
            first.len() <= second.len()
        };
        if to_first {
            first.push(chosen);
            mbr1.extend_mbr(&mbrs[chosen]);
        } else {
            second.push(chosen);
            mbr2.extend_mbr(&mbrs[chosen]);
        }
    }
    SplitGroups { first, second }
}

/// Guttman's **linear** split: seeds are the pair with the greatest
/// normalised separation along any axis; the rest are assigned by least
/// enlargement in arbitrary order.
// See `quadratic_split`: exact equality is the tie-break.
#[allow(clippy::float_cmp)]
pub fn linear_split(mbrs: &[Mbr], min_entries: usize) -> SplitGroups {
    let total = mbrs.len();
    assert!(total >= 2 * min_entries, "not enough entries to split");
    let dim = mbrs[0].dim();

    // LinearPickSeeds.
    let (mut seed_a, mut seed_b, mut best_sep) = (0, 1, f64::NEG_INFINITY);
    for axis in 0..dim {
        // Entry with the highest low side and entry with the lowest high side.
        let (mut hi_low_i, mut hi_low) = (0, f64::NEG_INFINITY);
        let (mut lo_high_i, mut lo_high) = (0, f64::INFINITY);
        let (mut axis_min, mut axis_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, m) in mbrs.iter().enumerate() {
            let (l, h) = (m.low()[axis], m.high()[axis]);
            if l > hi_low {
                hi_low = l;
                hi_low_i = i;
            }
            if h < lo_high {
                lo_high = h;
                lo_high_i = i;
            }
            axis_min = axis_min.min(l);
            axis_max = axis_max.max(h);
        }
        if hi_low_i == lo_high_i {
            continue; // cannot seed with one entry
        }
        let width = (axis_max - axis_min).max(1e-300);
        let sep = (hi_low - lo_high) / width;
        if sep > best_sep {
            best_sep = sep;
            seed_a = hi_low_i;
            seed_b = lo_high_i;
        }
    }
    if seed_a == seed_b {
        // Fully degenerate (all boxes identical): arbitrary seeds.
        seed_a = 0;
        seed_b = 1;
    }

    let mut first = vec![seed_a];
    let mut second = vec![seed_b];
    let mut mbr1 = mbrs[seed_a].clone();
    let mut mbr2 = mbrs[seed_b].clone();
    for (i, m) in mbrs.iter().enumerate() {
        if i == seed_a || i == seed_b {
            continue;
        }
        // m-guarantee: if one group needs every unassigned entry, give it
        // everything from here on.
        let unassigned = total - first.len() - second.len();
        if first.len() + unassigned == min_entries {
            first.push(i);
            mbr1.extend_mbr(m);
            continue;
        }
        if second.len() + unassigned == min_entries {
            second.push(i);
            mbr2.extend_mbr(m);
            continue;
        }
        let d1 = mbr1.enlargement_for(m);
        let d2 = mbr2.enlargement_for(m);
        let to_first = if d1 != d2 {
            d1 < d2
        } else if mbr1.volume() != mbr2.volume() {
            mbr1.volume() < mbr2.volume()
        } else {
            first.len() <= second.len()
        };
        if to_first {
            first.push(i);
            mbr1.extend_mbr(m);
        } else {
            second.push(i);
            mbr2.extend_mbr(m);
        }
    }

    // Enforce the m lower bound by moving the entries that least hurt.
    rebalance_to_min(&mut first, &mut second, mbrs, min_entries);
    SplitGroups { first, second }
}

/// Moves entries from the larger group to the smaller until both meet the
/// `m` bound, choosing moves that least enlarge the receiving MBR.
fn rebalance_to_min(
    first: &mut Vec<usize>,
    second: &mut Vec<usize>,
    mbrs: &[Mbr],
    min_entries: usize,
) {
    loop {
        let (src, dst): (&mut Vec<usize>, &mut Vec<usize>) = if first.len() < min_entries {
            (second, first)
        } else if second.len() < min_entries {
            (first, second)
        } else {
            return;
        };
        let dst_mbr = mbr_of_group(mbrs, dst);
        let (mut best_pos, mut best_cost) = (0, f64::INFINITY);
        for (pos, &i) in src.iter().enumerate() {
            let cost = dst_mbr.enlargement_for(&mbrs[i]);
            if cost < best_cost {
                best_cost = cost;
                best_pos = pos;
            }
        }
        let moved = src.swap_remove(best_pos);
        dst.push(moved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_mbrs(points: &[[f64; 2]]) -> Vec<Mbr> {
        points.iter().map(|p| Mbr::point(p)).collect()
    }

    fn check_valid(groups: &SplitGroups, total: usize, m: usize) {
        let mut seen = vec![false; total];
        for &i in groups.first.iter().chain(&groups.second) {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing index");
        assert!(groups.first.len() >= m, "group one below m");
        assert!(groups.second.len() >= m, "group two below m");
    }

    fn two_clusters() -> Vec<Mbr> {
        let mut pts = vec![];
        for i in 0..5 {
            pts.push([i as f64 * 0.1, i as f64 * 0.1]);
        }
        for i in 0..5 {
            pts.push([100.0 + i as f64 * 0.1, 100.0 + i as f64 * 0.1]);
        }
        point_mbrs(&pts)
    }

    #[test]
    fn rstar_separates_obvious_clusters() {
        let mbrs = two_clusters();
        let g = rstar_split(&mbrs, 2);
        check_valid(&g, 10, 2);
        let low: Vec<usize> = (0..5).collect();
        let mut f = g.first.clone();
        f.sort_unstable();
        let mut s = g.second.clone();
        s.sort_unstable();
        assert!(f == low || s == low, "clusters were mixed: {g:?}");
    }

    #[test]
    fn quadratic_separates_obvious_clusters() {
        let mbrs = two_clusters();
        let g = quadratic_split(&mbrs, 2);
        check_valid(&g, 10, 2);
        let low: Vec<usize> = (0..5).collect();
        let mut f = g.first.clone();
        f.sort_unstable();
        let mut s = g.second.clone();
        s.sort_unstable();
        assert!(f == low || s == low, "clusters were mixed: {g:?}");
    }

    #[test]
    fn linear_separates_obvious_clusters() {
        let mbrs = two_clusters();
        let g = linear_split(&mbrs, 2);
        check_valid(&g, 10, 2);
    }

    #[test]
    fn all_policies_respect_m_on_degenerate_input() {
        // All identical points — the worst case for seed picking.
        let mbrs: Vec<Mbr> = (0..9).map(|_| Mbr::point(&[1.0, 1.0, 1.0])).collect();
        for (name, g) in [
            ("rstar", rstar_split(&mbrs, 4)),
            ("quadratic", quadratic_split(&mbrs, 4)),
            ("linear", linear_split(&mbrs, 4)),
        ] {
            check_valid(&g, 9, 4);
            let _ = name;
        }
    }

    #[test]
    fn splits_work_on_rectangles_not_just_points() {
        let mbrs: Vec<Mbr> = (0..8)
            .map(|i| {
                let base = if i < 4 { 0.0 } else { 50.0 };
                Mbr::new(
                    vec![base + i as f64, base],
                    vec![base + i as f64 + 2.0, base + 3.0],
                )
                .unwrap()
            })
            .collect();
        for g in [
            rstar_split(&mbrs, 3),
            quadratic_split(&mbrs, 3),
            linear_split(&mbrs, 3),
        ] {
            check_valid(&g, 8, 3);
        }
    }

    #[test]
    fn rstar_prefers_low_overlap_distributions() {
        // A line of points: splitting in the middle has zero overlap.
        let mbrs: Vec<Mbr> = (0..10).map(|i| Mbr::point(&[i as f64, 0.0])).collect();
        let g = rstar_split(&mbrs, 3);
        let m1 = g
            .first
            .iter()
            .map(|&i| mbrs[i].clone())
            .reduce(|a, b| a.union(&b))
            .unwrap();
        let m2 = g
            .second
            .iter()
            .map(|&i| mbrs[i].clone())
            .reduce(|a, b| a.union(&b))
            .unwrap();
        assert_eq!(m1.overlap(&m2), 0.0);
    }

    #[test]
    fn minimum_sized_split_is_exact_halves() {
        // total = 2m exactly: each group must be exactly m.
        let mbrs: Vec<Mbr> = (0..8)
            .map(|i| Mbr::point(&[i as f64, -(i as f64)]))
            .collect();
        for g in [
            rstar_split(&mbrs, 4),
            quadratic_split(&mbrs, 4),
            linear_split(&mbrs, 4),
        ] {
            assert_eq!(g.first.len(), 4);
            assert_eq!(g.second.len(), 4);
            check_valid(&g, 8, 4);
        }
    }
}
