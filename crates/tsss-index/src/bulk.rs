//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! The paper's pre-processing step inserts every extracted window into the
//! R*-tree one at a time. That remains available ([`crate::RTree::insert`]),
//! but for the benchmark harness — which rebuilds a ~650 000-point index for
//! every parameter setting — we also provide the classic STR packed loader
//! (Leutenegger et al.): order the points by recursive coordinate tiling,
//! pack them into full leaves, and build each directory level the same way.
//! The result satisfies every R-tree invariant and answers queries
//! identically; only the box shapes (and hence constant factors) differ.

// analyze::allow-file(index): the STR tiling recursions index `entries[start..end]` with `end` clamped to `entries.len()`, and chunk sizes from `chunk_sizes` sum exactly to the input length, so every `split_off`/slice stays in bounds.

use tsss_geometry::Mbr;
use tsss_storage::{BufferPool, PageFile, PageId};

use crate::error::IndexError;
use crate::node::{ChildEntry, DataEntry, LeafSlab, Node};
use crate::tree::{RTree, TreeConfig};

/// Bulk loads `entries` into a fresh tree with configuration `cfg`, using
/// coordinate-space STR tiling.
///
/// # Errors
/// Any storage failure while writing the packed pages.
///
/// # Panics
/// Panics when any entry's dimension disagrees with `cfg.dim`.
pub fn bulk_load(cfg: TreeConfig, entries: Vec<DataEntry>) -> Result<RTree, IndexError> {
    let keys: Vec<Vec<f64>> = entries.iter().map(|e| e.point.to_vec()).collect();
    bulk_load_keyed(cfg, entries, keys)
}

/// Bulk loads with **polar** (direction-first) tiling: the STR key of a
/// point is its unit direction followed by its norm, so leaves become
/// angular sectors subdivided by radius.
///
/// This is an extension beyond the paper, tailored to its query shape:
/// every query is a *line through the origin* (the SE-line), and a line
/// through the origin only penetrates boxes whose angular extent covers its
/// direction — direction-aligned boxes turn the ε = 0 search from "cross
/// the whole cloud" into "walk one narrow sector", cutting node accesses by
/// an order of magnitude (see the `ablation_build` bench).
///
/// # Errors
/// Any storage failure while writing the packed pages.
///
/// # Panics
/// Panics when any entry's dimension disagrees with `cfg.dim`.
pub fn bulk_load_polar(cfg: TreeConfig, entries: Vec<DataEntry>) -> Result<RTree, IndexError> {
    let keys: Vec<Vec<f64>> = entries
        .iter()
        .map(|e| {
            let norm = e.point.iter().map(|x| x * x).sum::<f64>().sqrt();
            // Radius FIRST: tiles become norm shells subdivided by
            // direction. (Direction-first looks natural but backfires: a
            // wide angular sector spanning all radii has a bounding box
            // reaching into the origin neighbourhood, which every query
            // line penetrates.) Log-radius keeps the log-uniformly spread
            // amplitudes from crowding into one shell.
            let mut k = Vec::with_capacity(e.point.len() + 1);
            k.push(if norm > 0.0 {
                norm.ln()
            } else {
                f64::NEG_INFINITY
            });
            if norm > 0.0 {
                k.extend(e.point.iter().map(|x| x / norm));
            } else {
                k.extend(std::iter::repeat_n(0.0, e.point.len()));
            }
            k
        })
        .collect();
    bulk_load_keyed(cfg, entries, keys)
}

/// Shared loader: orders `entries` by recursive STR tiling over the given
/// per-entry `keys` (any dimensionality), then packs levels bottom-up.
fn bulk_load_keyed(
    cfg: TreeConfig,
    entries: Vec<DataEntry>,
    keys: Vec<Vec<f64>>,
) -> Result<RTree, IndexError> {
    cfg.validate();
    assert_eq!(entries.len(), keys.len(), "one key per entry");
    for e in &entries {
        assert_eq!(e.point.len(), cfg.dim, "entry dimension mismatch");
    }
    let file = PageFile::new(cfg.page_size)?;
    let mut pool = BufferPool::new(file, cfg.buffer_frames);
    let len = entries.len();

    if entries.is_empty() {
        let root = pool.allocate()?;
        let mut page = tsss_storage::Page::zeroed(cfg.page_size);
        Node::empty_leaf(cfg.dim).encode(&mut page, cfg.dim);
        pool.write(root, page)?;
        return Ok(RTree::from_parts(cfg, pool, root, 1, 0));
    }

    // Order points by STR tiling over the keys, then pack sequentially.
    let dim = cfg.dim;
    let key_dim = keys[0].len();
    let mut keyed: Vec<(Vec<f64>, DataEntry)> = keys.into_iter().zip(entries).collect();
    str_order_keyed(&mut keyed, 0, key_dim, cfg.leaf_max_entries);
    let entries: Vec<DataEntry> = keyed.into_iter().map(|(_, e)| e).collect();
    let chunks = chunk_sizes(entries.len(), cfg.leaf_max_entries, cfg.leaf_min_entries);

    let write_node = |pool: &mut BufferPool, node: &Node| -> Result<PageId, IndexError> {
        let id = pool.allocate()?;
        let mut page = tsss_storage::Page::zeroed(cfg.page_size);
        node.encode(&mut page, cfg.dim);
        pool.write(id, page)?;
        Ok(id)
    };

    // Leaves.
    let mut level: Vec<ChildEntry> = Vec::with_capacity(chunks.len());
    let mut rest = entries;
    for size in chunks {
        let tail = rest.split_off(size);
        let node = Node::Leaf(LeafSlab::from_entries(cfg.dim, rest));
        // analyze::allow(panic): chunk_sizes never emits a zero-sized chunk, so the node has at least one entry.
        let mbr = node.mbr().expect("non-empty leaf");
        let page = write_node(&mut pool, &node)?;
        level.push(ChildEntry { mbr, page });
        rest = tail;
    }
    debug_assert!(rest.is_empty());

    // Directory levels.
    let mut height = 1;
    while level.len() > 1 {
        str_order_children(&mut level, 0, dim, cfg.max_entries);
        let chunks = chunk_sizes(level.len(), cfg.max_entries, cfg.min_entries);
        let mut next: Vec<ChildEntry> = Vec::with_capacity(chunks.len());
        let mut rest = level;
        for size in chunks {
            let tail = rest.split_off(size);
            let node = Node::Internal(rest);
            // analyze::allow(panic): chunk_sizes never emits a zero-sized chunk, so the node has at least one entry.
            let mbr = node.mbr().expect("non-empty internal node");
            let page = write_node(&mut pool, &node)?;
            next.push(ChildEntry { mbr, page });
            rest = tail;
        }
        level = next;
        height += 1;
    }

    let root = level[0].page;
    Ok(RTree::from_parts(cfg, pool, root, height, len))
}

/// Splits `n` items into chunks of at most `max` while keeping every chunk
/// at least `min` (assuming `n ≥ 1`; a single chunk may be smaller than
/// `min` only when `n < min`, which is legal because that node will be the
/// root).
fn chunk_sizes(n: usize, max: usize, min: usize) -> Vec<usize> {
    if n <= max {
        return vec![n];
    }
    let mut count = n.div_ceil(max);
    // Even spread, then fix any chunk that would dip below `min`.
    loop {
        let base = n / count;
        let extra = n % count; // the first `extra` chunks get base + 1
        if base >= min || count == 1 {
            let mut out = Vec::with_capacity(count);
            for i in 0..count {
                out.push(if i < extra { base + 1 } else { base });
            }
            return out;
        }
        count -= 1;
    }
}

/// Recursive STR ordering over per-entry keys: sort by the current key
/// axis, cut into slabs sized so each eventually holds whole leaves,
/// recurse with the next axis inside each slab.
fn str_order_keyed(
    entries: &mut [(Vec<f64>, DataEntry)],
    axis: usize,
    key_dim: usize,
    leaf_cap: usize,
) {
    let n = entries.len();
    if n <= leaf_cap || axis >= key_dim {
        return;
    }
    entries.sort_by(|a, b| {
        a.0[axis]
            .partial_cmp(&b.0[axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // analyze::allow(cast): page-count estimate feeding a powf heuristic; f64 precision loss only perturbs slab sizing, never indexing.
    let pages = n.div_ceil(leaf_cap) as f64;
    let remaining_dims = (key_dim - axis) as f64;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    // analyze::allow(cast): the root of a page count ≤ n rounds to a small positive slab count; `.max(1)` below guards the degenerate 0.
    let slabs = pages.powf(1.0 / remaining_dims).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut start = 0;
    while start < n {
        let end = (start + slab_size).min(n);
        str_order_keyed(&mut entries[start..end], axis + 1, key_dim, leaf_cap);
        start = end;
    }
}

/// Same tiling for directory entries, keyed by MBR centres.
fn str_order_children(entries: &mut [ChildEntry], axis: usize, dim: usize, cap: usize) {
    let n = entries.len();
    if n <= cap || axis >= dim {
        return;
    }
    entries.sort_by(|a, b| {
        center_coord(&a.mbr, axis)
            .partial_cmp(&center_coord(&b.mbr, axis))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // analyze::allow(cast): see above — heuristic slab estimate, not an index.
    let pages = n.div_ceil(cap) as f64;
    let remaining_dims = (dim - axis) as f64;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    // analyze::allow(cast): see above.
    let slabs = pages.powf(1.0 / remaining_dims).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut start = 0;
    while start < n {
        let end = (start + slab_size).min(n);
        str_order_children(&mut entries[start..end], axis + 1, dim, cap);
        start = end;
    }
}

fn center_coord(mbr: &Mbr, axis: usize) -> f64 {
    0.5 * (mbr.low()[axis] + mbr.high()[axis])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SplitPolicy;
    use tsss_geometry::line::Line;
    use tsss_geometry::penetration::PenetrationMethod;

    fn cfg() -> TreeConfig {
        TreeConfig::uniform(2, 1024, 8, 3, 2, SplitPolicy::RStar, 0)
    }

    fn points(n: usize) -> Vec<DataEntry> {
        (0..n)
            .map(|i| {
                DataEntry::new(
                    vec![((i * 37) % 101) as f64, ((i * 61) % 97) as f64],
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        for n in [1usize, 5, 8, 9, 16, 17, 100, 1000] {
            let chunks = chunk_sizes(n, 8, 3);
            assert_eq!(chunks.iter().sum::<usize>(), n, "n = {n}");
            for (i, &c) in chunks.iter().enumerate() {
                assert!(c <= 8, "n = {n}, chunk {i} too big: {c}");
                if n > 8 {
                    assert!(c >= 3, "n = {n}, chunk {i} too small: {c}");
                }
            }
        }
    }

    #[test]
    fn empty_bulk_load_gives_empty_tree() {
        let t = bulk_load(cfg(), vec![]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.check_invariants().unwrap(), 0);
    }

    #[test]
    fn single_entry_bulk_load() {
        let t = bulk_load(cfg(), points(1)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_preserves_every_entry() {
        let t = bulk_load(cfg(), points(777)).unwrap();
        assert_eq!(t.len(), 777);
        t.check_invariants().unwrap();
        let ids: std::collections::BTreeSet<u64> =
            t.dump().unwrap().into_iter().map(|(_, id)| id).collect();
        assert_eq!(ids.len(), 777);
        assert_eq!(*ids.iter().next().unwrap(), 0);
        assert_eq!(*ids.iter().last().unwrap(), 776);
    }

    #[test]
    fn bulk_loaded_tree_answers_like_incremental_tree() {
        let entries = points(400);
        let bulk = bulk_load(cfg(), entries.clone()).unwrap();
        let mut incr = RTree::new(cfg()).unwrap();
        for e in &entries {
            incr.insert(e.point.to_vec(), e.id).unwrap();
        }
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 1.1]).unwrap();
        for eps in [0.0, 2.0, 10.0] {
            let a: std::collections::BTreeSet<u64> = bulk
                .line_query(&line, eps, PenetrationMethod::EnteringExiting)
                .unwrap()
                .matches
                .iter()
                .map(|m| m.id)
                .collect();
            let b: std::collections::BTreeSet<u64> = incr
                .line_query(&line, eps, PenetrationMethod::EnteringExiting)
                .unwrap()
                .matches
                .iter()
                .map(|m| m.id)
                .collect();
            assert_eq!(a, b, "eps = {eps}");
        }
    }

    #[test]
    fn bulk_load_supports_subsequent_inserts_and_deletes() {
        let mut t = bulk_load(cfg(), points(100)).unwrap();
        t.insert(vec![500.0, 500.0], 9999).unwrap();
        assert_eq!(t.len(), 101);
        t.check_invariants().unwrap();
        assert!(t.delete(&[500.0, 500.0], 9999).unwrap());
        // Delete a bulk-loaded point too.
        let victim = points(100)[42].clone();
        assert!(t.delete(&victim.point, victim.id).unwrap());
        assert_eq!(t.len(), 99);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_is_denser_than_incremental() {
        let entries = points(600);
        let bulk = bulk_load(cfg(), entries.clone()).unwrap();
        let mut incr = RTree::new(cfg()).unwrap();
        for e in &entries {
            incr.insert(e.point.to_vec(), e.id).unwrap();
        }
        // A packed tree can never be taller than the incremental one.
        assert!(bulk.height() <= incr.height());
    }

    #[test]
    fn six_dim_paper_scale_bulk_load() {
        let mut c = TreeConfig::paper(6);
        c.buffer_frames = 0;
        let entries: Vec<DataEntry> = (0..5000)
            .map(|i| {
                DataEntry::new(
                    (0..6)
                        .map(|j| (((i * 31 + j * 17) % 211) as f64).sin())
                        .collect(),
                    i as u64,
                )
            })
            .collect();
        let t = bulk_load(c, entries).unwrap();
        assert_eq!(t.len(), 5000);
        t.check_invariants().unwrap();
    }
}
