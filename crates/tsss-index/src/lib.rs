//! From-scratch spatial indexes for the PODS '99 reproduction.
//!
//! The paper indexes SE-transformed (and DFT-reduced) subsequences in an
//! R*-tree and answers scale-shift similarity queries by traversing only the
//! subtrees whose **ε-enlarged MBRs are penetrated by the query's SE-line**
//! (Theorem 3). This crate provides everything that requires, built on the
//! paged storage of `tsss-storage`:
//!
//! * [`node`] — R-tree nodes with an explicit page serialisation (one node
//!   per 4 KB page, exactly the paper's layout),
//! * [`tree`] — a disk-resident R-tree supporting three split policies:
//!   Guttman's linear and quadratic splits \[22\] and the R*-tree
//!   (Beckmann–Kriegel–Schneider–Seeger) split with forced reinsertion
//!   \[16\] (the paper's choice: `M = 20`, `m = 40 %·M`, `p = 30 %·M`),
//! * [`bulk`] — Sort-Tile-Recursive bulk loading for fast index
//!   construction in the benchmarks,
//! * [`query`] — range / box / **line-penetration** search (the paper's
//!   algorithm) with pluggable penetration strategies and exact node-access
//!   accounting,
//! * [`nn`] — best-first nearest-neighbour search under point-to-line
//!   distance (the extension the paper sketches via Corollary 1).

#![forbid(unsafe_code)]
// Tests assert bit-exact determinism and build small fixtures, where exact
// float comparison and narrowing literals are the point, not a hazard.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]
// Belt-and-braces next to the analyzer's R1: clippy flags stray unwraps in
// non-test code too, so regressions fail CI twice.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod bulk;
pub mod error;
pub mod nn;
pub mod node;
pub mod persist;
pub mod query;
pub mod split;
pub mod tree;

pub use error::IndexError;
pub use node::{ChildEntry, DataEntry, LeafSlab, Node};
pub use query::{LineQueryStats, QueryOutcome};
pub use tree::{RTree, SplitPolicy, TreeConfig};
