//! Index persistence: serialise a whole [`RTree`] — configuration, shape
//! metadata and the underlying page file — to any `Write`, and load it back.
//!
//! Because nodes already live in pages, persistence is cheap: the node
//! serialisation *is* the on-disk format, and this module only adds a small
//! header. Buffer-pool state (cached frames) is flushed, not persisted.
//!
//! Format `TSSSIX02`: an 8-byte versioned magic, a CRC-checked metadata
//! block (configuration, root page, height, length), then the page file's
//! own checksummed stream. Any single flipped bit anywhere in the stream is
//! rejected at load time with `InvalidData`; loaded configurations are
//! re-validated before the tree is reassembled. [`RTree::save_to_path`]
//! writes atomically (temp file + rename) so a crash mid-write leaves the
//! previous file readable.

use std::io::{self, Read, Write};
use std::path::Path;

use tsss_storage::codec::*;
use tsss_storage::{atomic_write, BufferPool, PageFile, PageId};

use crate::tree::{RTree, SplitPolicy, TreeConfig};

const MAGIC_PREFIX: &[u8; 6] = b"TSSSIX";
const VERSION: u8 = 2;

/// Upper bound on the metadata block; a real header is well under 200 bytes.
const MAX_META_BYTES: usize = 1 << 16;

/// Sanity bound on the persisted height: a tree of fanout ≥ 2 with 2⁶⁴
/// entries is still under 64 levels tall.
const MAX_HEIGHT: usize = 64;

fn split_tag(s: SplitPolicy) -> u8 {
    match s {
        SplitPolicy::RStar => 0,
        SplitPolicy::GuttmanQuadratic => 1,
        SplitPolicy::GuttmanLinear => 2,
    }
}

fn split_from_tag(t: u8) -> io::Result<SplitPolicy> {
    Ok(match t {
        0 => SplitPolicy::RStar,
        1 => SplitPolicy::GuttmanQuadratic,
        2 => SplitPolicy::GuttmanLinear,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown split policy tag {other}"),
            ))
        }
    })
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

pub(crate) fn write_config<W: Write + ?Sized>(w: &mut W, cfg: &TreeConfig) -> io::Result<()> {
    put_usize(w, cfg.dim)?;
    put_usize(w, cfg.page_size)?;
    put_usize(w, cfg.max_entries)?;
    put_usize(w, cfg.min_entries)?;
    put_usize(w, cfg.reinsert_count)?;
    put_usize(w, cfg.leaf_max_entries)?;
    put_usize(w, cfg.leaf_min_entries)?;
    put_usize(w, cfg.leaf_reinsert_count)?;
    put_u8(w, split_tag(cfg.split))?;
    put_usize(w, cfg.buffer_frames)
}

pub(crate) fn read_config<R: Read + ?Sized>(r: &mut R) -> io::Result<TreeConfig> {
    Ok(TreeConfig {
        dim: get_usize(r)?,
        page_size: get_usize(r)?,
        max_entries: get_usize(r)?,
        min_entries: get_usize(r)?,
        reinsert_count: get_usize(r)?,
        leaf_max_entries: get_usize(r)?,
        leaf_min_entries: get_usize(r)?,
        leaf_reinsert_count: get_usize(r)?,
        split: split_from_tag(get_u8(r)?)?,
        buffer_frames: get_usize(r)?,
    })
}

impl RTree {
    /// Serialises the tree (after flushing cached frames).
    ///
    /// # Errors
    /// Propagates I/O errors; storage failures while flushing surface as
    /// `InvalidData`.
    pub fn save_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        put_magic(w, &versioned_magic(MAGIC_PREFIX, VERSION))?;
        let mut meta = Vec::new();
        write_config(&mut meta, self.config())?;
        put_u32(&mut meta, self.root_page().0)?;
        put_usize(&mut meta, self.height())?;
        put_usize(&mut meta, self.len())?;
        put_checked_block(w, &meta)?;
        // `&mut W` is itself a sized `Write`, which is what lets a
        // possibly-unsized `W` reach `persist(&mut dyn Write)`.
        let mut sink: &mut W = w;
        self.with_store(|s| s.persist(&mut sink))
            .map_err(|e| invalid(e.to_string()))?
    }

    /// Loads a tree previously written by [`RTree::save_to`].
    ///
    /// # Errors
    /// `InvalidData` on malformed, corrupted, truncated or wrong-version
    /// input; propagates I/O errors. Every page checksum is verified, so a
    /// bit flip anywhere in the stream is caught here rather than at query
    /// time.
    pub fn load_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        expect_versioned_magic(r, MAGIC_PREFIX, VERSION)?;
        let meta = get_checked_block(r, MAX_META_BYTES)?;
        let mr = &mut meta.as_slice();
        let cfg = read_config(mr)?;
        cfg.try_validate().map_err(invalid)?;
        let root = PageId(get_u32(mr)?);
        let height = get_usize(mr)?;
        let len = get_usize(mr)?;
        if height == 0 || height > MAX_HEIGHT {
            return Err(invalid(format!("implausible tree height {height}")));
        }
        let file = PageFile::read_from(r)?;
        if file.page_size() != cfg.page_size {
            return Err(invalid(
                "page size disagrees between header and page file".into(),
            ));
        }
        // analyze::allow(cast): u32 page id → usize is lossless on every supported (≥ 32-bit) target; the comparison is the range check.
        if root == PageId::INVALID || (root.0 as usize) >= file.extent() {
            return Err(invalid("root page out of range".into()));
        }
        let buffer_frames = cfg.buffer_frames;
        let pool = BufferPool::new(file, buffer_frames);
        Ok(RTree::from_parts(cfg, pool, root, height, len))
    }

    /// Atomically writes the tree to `path`: the bytes go to a temporary
    /// sibling file which is fsynced and renamed over the target, so a crash
    /// mid-write leaves any previous file intact.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_to_path(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, |w| self.save_to(w))
    }

    /// Loads a tree from a file written by [`RTree::save_to_path`].
    ///
    /// # Errors
    /// As [`RTree::load_from`].
    pub fn load_from_path(path: &Path) -> io::Result<Self> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        Self::load_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsss_geometry::line::Line;
    use tsss_geometry::penetration::PenetrationMethod;

    fn build_tree(n: usize) -> RTree {
        let mut t =
            RTree::new(TreeConfig::uniform(3, 1024, 8, 3, 2, SplitPolicy::RStar, 0)).unwrap();
        for i in 0..n as u64 {
            t.insert(
                vec![
                    ((i * 37) % 101) as f64,
                    ((i * 61) % 97) as f64,
                    ((i * 13) % 89) as f64,
                ],
                i,
            )
            .unwrap();
        }
        t
    }

    fn roundtrip(tree: &mut RTree) -> RTree {
        let mut buf = Vec::new();
        tree.save_to(&mut buf).unwrap();
        RTree::load_from(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_contents_and_invariants() {
        let mut t = build_tree(250);
        let u = roundtrip(&mut t);
        assert_eq!(u.len(), 250);
        assert_eq!(u.height(), t.height());
        u.check_invariants().unwrap();
        let mut a = t.dump().unwrap();
        let mut b = u.dump().unwrap();
        a.sort_by_key(|(_, id)| *id);
        b.sort_by_key(|(_, id)| *id);
        assert_eq!(a, b);
    }

    #[test]
    fn loaded_tree_answers_queries_identically() {
        let mut t = build_tree(300);
        let u = roundtrip(&mut t);
        let line = Line::new(vec![0.0; 3], vec![1.0, 0.9, 1.2]).unwrap();
        for eps in [0.0, 5.0, 25.0] {
            let a: Vec<u64> = {
                let mut v: Vec<u64> = t
                    .line_query(&line, eps, PenetrationMethod::EnteringExiting)
                    .unwrap()
                    .matches
                    .iter()
                    .map(|m| m.id)
                    .collect();
                v.sort_unstable();
                v
            };
            let b: Vec<u64> = {
                let mut v: Vec<u64> = u
                    .line_query(&line, eps, PenetrationMethod::EnteringExiting)
                    .unwrap()
                    .matches
                    .iter()
                    .map(|m| m.id)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(a, b, "eps {eps}");
        }
    }

    #[test]
    fn loaded_tree_accepts_further_updates() {
        let mut t = build_tree(100);
        let mut u = roundtrip(&mut t);
        u.insert(vec![500.0, 500.0, 500.0], 9999).unwrap();
        assert!(u.delete(&[500.0, 500.0, 500.0], 9999).unwrap());
        for i in 0..50u64 {
            let p = vec![
                ((i * 37) % 101) as f64,
                ((i * 61) % 97) as f64,
                ((i * 13) % 89) as f64,
            ];
            assert!(u.delete(&p, i).unwrap(), "missing id {i}");
        }
        u.check_invariants().unwrap();
        assert_eq!(u.len(), 50);
    }

    #[test]
    fn empty_tree_roundtrips() {
        let mut t = RTree::new(TreeConfig::uniform(
            2,
            512,
            4,
            2,
            1,
            SplitPolicy::GuttmanLinear,
            0,
        ))
        .unwrap();
        let u = roundtrip(&mut t);
        assert!(u.is_empty());
        assert_eq!(u.config().split, SplitPolicy::GuttmanLinear);
        u.check_invariants().unwrap();
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let t = build_tree(10);
        let mut buf = Vec::new();
        t.save_to(&mut buf).unwrap();
        buf[3] = b'Z';
        assert!(RTree::load_from(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn old_version_is_rejected_with_a_version_message() {
        let t = build_tree(10);
        let mut buf = Vec::new();
        t.save_to(&mut buf).unwrap();
        buf[6] = b'0';
        buf[7] = b'1'; // masquerade as TSSSIX01
        let err = RTree::load_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert!(
            err.to_string().contains("unsupported version"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let t = build_tree(40);
        let mut buf = Vec::new();
        t.save_to(&mut buf).unwrap();
        for cut in [0, 3, 8, 20, 100, buf.len() / 2, buf.len() - 1] {
            let short = &buf[..cut];
            assert!(
                RTree::load_from(&mut std::io::Cursor::new(short)).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn sampled_bit_flips_anywhere_in_the_stream_are_rejected() {
        let t = build_tree(60);
        let mut buf = Vec::new();
        t.save_to(&mut buf).unwrap();
        // Every byte is too slow for a unit test; stride through the stream
        // and flip one bit per sampled byte.
        for pos in (0..buf.len()).step_by(37) {
            let mut dam = buf.clone();
            dam[pos] ^= 1 << (pos % 8);
            let r = RTree::load_from(&mut std::io::Cursor::new(dam));
            assert!(r.is_err(), "flip at byte {pos} must be rejected");
        }
    }

    #[test]
    fn invalid_loaded_config_is_rejected_not_panicked_on() {
        let t = build_tree(10);
        let mut good = Vec::new();
        t.save_to(&mut good).unwrap();
        // Re-encode the metadata block with a broken config (m > M/2) and a
        // fresh CRC so only the validation can reject it.
        let mut cfg = t.config().clone();
        cfg.min_entries = cfg.max_entries; // violates m <= M/2
        let mut meta = Vec::new();
        write_config(&mut meta, &cfg).unwrap();
        put_u32(&mut meta, t.root_page().0).unwrap();
        put_usize(&mut meta, t.height()).unwrap();
        put_usize(&mut meta, t.len()).unwrap();
        let mut buf = Vec::new();
        put_magic(&mut buf, &versioned_magic(MAGIC_PREFIX, VERSION)).unwrap();
        put_checked_block(&mut buf, &meta).unwrap();
        t.with_store(|s| s.persist(&mut buf)).unwrap().unwrap();
        let err = RTree::load_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert!(
            err.to_string().contains("m <= M/2"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn atomic_path_roundtrip_and_crash_safety() {
        let dir = std::env::temp_dir().join(format!("tsss_ix_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.idx");

        let t = build_tree(80);
        t.save_to_path(&path).unwrap();
        let u = RTree::load_from_path(&path).unwrap();
        assert_eq!(u.len(), 80);
        u.check_invariants().unwrap();

        // A failed save must leave the previous file loadable.
        let big = build_tree(200);
        let res = atomic_write(&path, |w| {
            big.save_to(w)?;
            Err(io::Error::other("simulated crash mid-write"))
        });
        assert!(res.is_err());
        let still = RTree::load_from_path(&path).unwrap();
        assert_eq!(still.len(), 80, "old file must survive a failed save");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn buffered_tree_flushes_before_saving() {
        let mut cfg = TreeConfig::uniform(2, 512, 4, 2, 1, SplitPolicy::RStar, 16);
        cfg.buffer_frames = 16;
        let mut t = RTree::new(cfg).unwrap();
        for i in 0..60u64 {
            t.insert(vec![i as f64, (i * 7 % 13) as f64], i).unwrap();
        }
        let mut buf = Vec::new();
        t.save_to(&mut buf).unwrap();
        let u = RTree::load_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(u.len(), 60);
        u.check_invariants().unwrap();
    }
}
