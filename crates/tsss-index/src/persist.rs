//! Index persistence: serialise a whole [`RTree`] — configuration, shape
//! metadata and the underlying page file — to any `Write`, and load it back.
//!
//! Because nodes already live in pages, persistence is cheap: the node
//! serialisation *is* the on-disk format, and this module only adds a small
//! header. Buffer-pool state (cached frames) is flushed, not persisted.

use std::io::{self, Read, Write};

use tsss_storage::codec::*;
use tsss_storage::{BufferPool, PageFile, PageId};

use crate::tree::{RTree, SplitPolicy, TreeConfig};

const MAGIC: &[u8; 8] = b"TSSSIX01";

fn split_tag(s: SplitPolicy) -> u8 {
    match s {
        SplitPolicy::RStar => 0,
        SplitPolicy::GuttmanQuadratic => 1,
        SplitPolicy::GuttmanLinear => 2,
    }
}

fn split_from_tag(t: u8) -> io::Result<SplitPolicy> {
    Ok(match t {
        0 => SplitPolicy::RStar,
        1 => SplitPolicy::GuttmanQuadratic,
        2 => SplitPolicy::GuttmanLinear,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown split policy tag {other}"),
            ))
        }
    })
}

pub(crate) fn write_config<W: Write>(w: &mut W, cfg: &TreeConfig) -> io::Result<()> {
    put_usize(w, cfg.dim)?;
    put_usize(w, cfg.page_size)?;
    put_usize(w, cfg.max_entries)?;
    put_usize(w, cfg.min_entries)?;
    put_usize(w, cfg.reinsert_count)?;
    put_usize(w, cfg.leaf_max_entries)?;
    put_usize(w, cfg.leaf_min_entries)?;
    put_usize(w, cfg.leaf_reinsert_count)?;
    put_u8(w, split_tag(cfg.split))?;
    put_usize(w, cfg.buffer_frames)
}

pub(crate) fn read_config<R: Read>(r: &mut R) -> io::Result<TreeConfig> {
    Ok(TreeConfig {
        dim: get_usize(r)?,
        page_size: get_usize(r)?,
        max_entries: get_usize(r)?,
        min_entries: get_usize(r)?,
        reinsert_count: get_usize(r)?,
        leaf_max_entries: get_usize(r)?,
        leaf_min_entries: get_usize(r)?,
        leaf_reinsert_count: get_usize(r)?,
        split: split_from_tag(get_u8(r)?)?,
        buffer_frames: get_usize(r)?,
    })
}

impl RTree {
    /// Serialises the tree (after flushing cached frames).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        put_magic(w, MAGIC)?;
        write_config(w, &self.config().clone())?;
        put_u32(w, self.root_page().0)?;
        put_usize(w, self.height())?;
        put_usize(w, self.len())?;
        self.with_file(|file| file.write_to(w))
    }

    /// Loads a tree previously written by [`RTree::save_to`].
    ///
    /// # Errors
    /// `InvalidData` on malformed input; propagates I/O errors.
    pub fn load_from<R: Read>(r: &mut R) -> io::Result<Self> {
        expect_magic(r, MAGIC)?;
        let cfg = read_config(r)?;
        let root = PageId(get_u32(r)?);
        let height = get_usize(r)?;
        let len = get_usize(r)?;
        let file = PageFile::read_from(r)?;
        if file.page_size() != cfg.page_size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "page size disagrees between header and page file",
            ));
        }
        if (root.0 as usize) >= file.extent() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "root page out of range",
            ));
        }
        let buffer_frames = cfg.buffer_frames;
        let pool = BufferPool::new(file, buffer_frames);
        Ok(RTree::from_parts(cfg, pool, root, height, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsss_geometry::line::Line;
    use tsss_geometry::penetration::PenetrationMethod;

    fn build_tree(n: usize) -> RTree {
        let mut t = RTree::new(TreeConfig::uniform(3, 1024, 8, 3, 2, SplitPolicy::RStar, 0));
        for i in 0..n as u64 {
            t.insert(
                vec![
                    ((i * 37) % 101) as f64,
                    ((i * 61) % 97) as f64,
                    ((i * 13) % 89) as f64,
                ],
                i,
            );
        }
        t
    }

    fn roundtrip(tree: &mut RTree) -> RTree {
        let mut buf = Vec::new();
        tree.save_to(&mut buf).unwrap();
        RTree::load_from(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_contents_and_invariants() {
        let mut t = build_tree(250);
        let u = roundtrip(&mut t);
        assert_eq!(u.len(), 250);
        assert_eq!(u.height(), t.height());
        u.check_invariants();
        let mut a = t.dump();
        let mut b = u.dump();
        a.sort_by_key(|(_, id)| *id);
        b.sort_by_key(|(_, id)| *id);
        assert_eq!(a, b);
    }

    #[test]
    fn loaded_tree_answers_queries_identically() {
        let mut t = build_tree(300);
        let u = roundtrip(&mut t);
        let line = Line::new(vec![0.0; 3], vec![1.0, 0.9, 1.2]).unwrap();
        for eps in [0.0, 5.0, 25.0] {
            let a: Vec<u64> = {
                let mut v: Vec<u64> = t
                    .line_query(&line, eps, PenetrationMethod::EnteringExiting)
                    .matches
                    .iter()
                    .map(|m| m.id)
                    .collect();
                v.sort_unstable();
                v
            };
            let b: Vec<u64> = {
                let mut v: Vec<u64> = u
                    .line_query(&line, eps, PenetrationMethod::EnteringExiting)
                    .matches
                    .iter()
                    .map(|m| m.id)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(a, b, "eps {eps}");
        }
    }

    #[test]
    fn loaded_tree_accepts_further_updates() {
        let mut t = build_tree(100);
        let mut u = roundtrip(&mut t);
        u.insert(vec![500.0, 500.0, 500.0], 9999);
        assert!(u.delete(&[500.0, 500.0, 500.0], 9999));
        for i in 0..50u64 {
            let p = vec![
                ((i * 37) % 101) as f64,
                ((i * 61) % 97) as f64,
                ((i * 13) % 89) as f64,
            ];
            assert!(u.delete(&p, i), "missing id {i}");
        }
        u.check_invariants();
        assert_eq!(u.len(), 50);
    }

    #[test]
    fn empty_tree_roundtrips() {
        let mut t = RTree::new(TreeConfig::uniform(
            2,
            512,
            4,
            2,
            1,
            SplitPolicy::GuttmanLinear,
            0,
        ));
        let u = roundtrip(&mut t);
        assert!(u.is_empty());
        assert_eq!(u.config().split, SplitPolicy::GuttmanLinear);
        u.check_invariants();
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let t = build_tree(10);
        let mut buf = Vec::new();
        t.save_to(&mut buf).unwrap();
        buf[3] = b'Z';
        assert!(RTree::load_from(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn buffered_tree_flushes_before_saving() {
        let mut cfg = TreeConfig::uniform(2, 512, 4, 2, 1, SplitPolicy::RStar, 16);
        cfg.buffer_frames = 16;
        let mut t = RTree::new(cfg);
        for i in 0..60u64 {
            t.insert(vec![i as f64, (i * 7 % 13) as f64], i);
        }
        let mut buf = Vec::new();
        t.save_to(&mut buf).unwrap();
        let u = RTree::load_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(u.len(), 60);
        u.check_invariants();
    }
}
