//! R-tree nodes and their page serialisation.
//!
//! The paper stores one node per 4 KB page (§7). We honour that literally:
//! a [`Node`] round-trips through a [`Page`] with the fixed layout below
//! (little-endian, alignment-free):
//!
//! ```text
//! offset 0   u8   kind (0 = leaf, 1 = internal)
//! offset 1   u16  entry count
//! offset 3   entries…
//!
//! internal entry (4 + 16·d bytes): u32 child page | d×f64 low | d×f64 high
//! leaf entry     (8 +  8·d bytes): u64 record id  | d×f64 point
//! ```
//!
//! The maximum fanout `M` a page can hold follows from these sizes; the
//! tree's configuration validates against it.

use tsss_geometry::Mbr;
use tsss_storage::{Page, PageId};

/// Byte size of the fixed node header.
pub const NODE_HEADER_BYTES: usize = 3;

/// An entry of an internal node: the MBR of a child and its page.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildEntry {
    /// Minimum bounding rectangle of the entire subtree under `page`.
    pub mbr: Mbr,
    /// Page id of the child node.
    pub page: PageId,
}

/// An entry of a leaf node: an indexed feature point and the identifier of
/// the record (data subsequence) it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct DataEntry {
    /// The indexed point (e.g. the DFT features of an SE-transformed
    /// window).
    pub point: Box<[f64]>,
    /// Caller-assigned record identifier (the paper's `ID_i`).
    pub id: u64,
}

impl DataEntry {
    /// Convenience constructor.
    pub fn new(point: Vec<f64>, id: u64) -> Self {
        Self {
            point: point.into_boxed_slice(),
            id,
        }
    }
}

/// Columnar storage for a leaf's entries: every id in one `Vec<u64>`, every
/// point packed row-major into one contiguous `f64` slab.
///
/// This is the in-memory layout the hot query loops scan — one bounds check
/// per row via [`rows`](Self::rows) instead of one heap pointer chase per
/// entry, and the point data of a whole leaf sits in a single cache-friendly
/// allocation. The on-disk wire format (interleaved `id, point` records; see
/// the module docs) is unchanged: [`Node::encode`]/[`Node::decode`] translate
/// between the two.
///
/// Mutating operations ([`reorder`](Self::reorder),
/// [`drain_front`](Self::drain_front), [`select`](Self::select),
/// [`remove`](Self::remove)) mirror the semantics the former
/// `Vec<DataEntry>` representation had (stable order, `Vec::remove`-style
/// shifts), so tree shapes — and therefore the blessed equivalence fixtures —
/// are preserved exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafSlab {
    dim: usize,
    ids: Vec<u64>,
    points: Vec<f64>,
}

impl LeafSlab {
    /// An empty slab for `dim`-dimensional points.
    ///
    /// # Panics
    /// Panics when `dim == 0` (the tree never indexes zero-dimensional
    /// points; row chunking requires a positive stride).
    pub fn new(dim: usize) -> Self {
        Self::with_capacity(dim, 0)
    }

    /// An empty slab with room for `entries` rows.
    ///
    /// # Panics
    /// Panics when `dim == 0`.
    pub fn with_capacity(dim: usize, entries: usize) -> Self {
        assert!(dim > 0, "leaf slab dimension must be positive");
        Self {
            dim,
            ids: Vec::with_capacity(entries),
            points: Vec::with_capacity(entries * dim),
        }
    }

    /// Builds a slab from row-structured entries (preserving order).
    ///
    /// # Panics
    /// Panics when `dim == 0` or an entry's dimension differs from `dim`.
    pub fn from_entries(dim: usize, entries: impl IntoIterator<Item = DataEntry>) -> Self {
        let it = entries.into_iter();
        let mut slab = Self::with_capacity(dim, it.size_hint().0);
        for e in it {
            slab.push(e.id, &e.point);
        }
        slab
    }

    /// Point dimensionality (row stride).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the slab holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The record ids, in row order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The raw point slab: row `i` occupies `points()[i·dim .. (i+1)·dim]`.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Iterates `(id, point)` rows in order — the hot-loop accessor; the
    /// point slices are consecutive chunks of one contiguous slab.
    pub fn rows(&self) -> impl Iterator<Item = (u64, &[f64])> {
        self.ids
            .iter()
            .copied()
            .zip(self.points.chunks_exact(self.dim))
    }

    /// The row at `i`, or `None` past the end.
    pub fn row(&self, i: usize) -> Option<(u64, &[f64])> {
        let start = i.checked_mul(self.dim)?;
        let point = self.points.get(start..start.checked_add(self.dim)?)?;
        self.ids.get(i).map(|&id| (id, point))
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when `point.len() != dim`.
    pub fn push(&mut self, id: u64, point: &[f64]) {
        assert_eq!(point.len(), self.dim, "leaf entry dimension mismatch");
        self.ids.push(id);
        self.points.extend_from_slice(point);
    }

    /// Appends a row from a [`DataEntry`].
    ///
    /// # Panics
    /// Panics when the entry's dimension differs from the slab's.
    pub fn push_entry(&mut self, e: DataEntry) {
        self.push(e.id, &e.point);
    }

    /// The first row holding exactly this `(point, id)` pair.
    pub fn position(&self, point: &[f64], id: u64) -> Option<usize> {
        self.rows().position(|(rid, p)| rid == id && p == point)
    }

    /// Removes row `i`, shifting later rows down (`Vec::remove` semantics).
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    pub fn remove(&mut self, i: usize) {
        self.ids.remove(i);
        let start = i * self.dim;
        self.points.drain(start..start + self.dim);
    }

    /// Rebuilds the slab with rows picked in `order` — the slab analogue of
    /// permuting a `Vec` of entries. Rows not mentioned are dropped; an
    /// out-of-range index is skipped (debug builds assert against both).
    pub fn reorder(&mut self, order: &[usize]) {
        debug_assert!(
            order.len() == self.len() && {
                let mut seen = vec![false; self.len()];
                order.iter().all(|&i| {
                    let fresh = seen.get(i).is_some_and(|s| !*s);
                    if let Some(s) = seen.get_mut(i) {
                        *s = true;
                    }
                    fresh
                })
            },
            "reorder requires a permutation of 0..len"
        );
        *self = self.select(order);
    }

    /// A new slab holding the rows at `idxs`, in that order (out-of-range
    /// indices are skipped).
    pub fn select(&self, idxs: &[usize]) -> Self {
        let mut out = Self::with_capacity(self.dim, idxs.len());
        for &i in idxs {
            if let Some((id, point)) = self.row(i) {
                out.ids.push(id);
                out.points.extend_from_slice(point);
            } else {
                debug_assert!(false, "select index {i} out of bounds");
            }
        }
        out
    }

    /// Removes the first `n` rows (later rows shift down) and returns them
    /// as row-structured entries — the slab analogue of `drain(..n)`.
    ///
    /// # Panics
    /// Panics when `n > len()`.
    pub fn drain_front(&mut self, n: usize) -> Vec<DataEntry> {
        let ids: Vec<u64> = self.ids.drain(..n).collect();
        let mut out = Vec::with_capacity(n);
        let mut drained = self.points.drain(..n * self.dim);
        for id in ids {
            let point: Vec<f64> = drained.by_ref().take(self.dim).collect();
            out.push(DataEntry::new(point, id));
        }
        drop(drained);
        out
    }

    /// Consumes the slab into row-structured entries, in order.
    pub fn into_entries(self) -> impl Iterator<Item = DataEntry> {
        let dim = self.dim;
        let mut points = self.points.into_iter();
        self.ids.into_iter().map(move |id| {
            let point: Vec<f64> = points.by_ref().take(dim).collect();
            DataEntry::new(point, id)
        })
    }

    /// The MBR covering every row, or `None` when empty.
    pub fn mbr(&self) -> Option<Mbr> {
        Mbr::covering(self.points.chunks_exact(self.dim))
    }
}

/// A node of the R-tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// An internal (directory) node.
    Internal(Vec<ChildEntry>),
    /// A leaf node holding data entries in columnar slab form.
    Leaf(LeafSlab),
}

impl Node {
    /// An empty leaf for `dim`-dimensional points.
    ///
    /// # Panics
    /// Panics when `dim == 0`.
    pub fn empty_leaf(dim: usize) -> Self {
        Node::Leaf(LeafSlab::new(dim))
    }

    /// Number of entries in the node.
    pub fn len(&self) -> usize {
        match self {
            Node::Internal(v) => v.len(),
            Node::Leaf(v) => v.len(),
        }
    }

    /// True when the node holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// The MBR covering every entry of the node, or `None` when empty.
    pub fn mbr(&self) -> Option<Mbr> {
        match self {
            Node::Internal(v) => {
                let mut it = v.iter();
                let mut acc = it.next()?.mbr.clone();
                for e in it {
                    acc.extend_mbr(&e.mbr);
                }
                Some(acc)
            }
            Node::Leaf(v) => v.mbr(),
        }
    }

    /// Byte size of one internal entry at dimension `dim`.
    pub fn internal_entry_bytes(dim: usize) -> usize {
        4 + 16 * dim
    }

    /// Byte size of one leaf entry at dimension `dim`.
    pub fn leaf_entry_bytes(dim: usize) -> usize {
        8 + 8 * dim
    }

    /// Largest `M` such that a node with `M` entries of either kind fits a
    /// page of `page_size` bytes at dimension `dim`.
    pub fn max_fanout(page_size: usize, dim: usize) -> usize {
        let worst = Self::internal_entry_bytes(dim).max(Self::leaf_entry_bytes(dim));
        (page_size - NODE_HEADER_BYTES) / worst
    }

    /// Largest internal-node fanout fitting the page.
    pub fn max_internal_fanout(page_size: usize, dim: usize) -> usize {
        (page_size - NODE_HEADER_BYTES) / Self::internal_entry_bytes(dim)
    }

    /// Largest leaf-node fanout fitting the page.
    pub fn max_leaf_fanout(page_size: usize, dim: usize) -> usize {
        (page_size - NODE_HEADER_BYTES) / Self::leaf_entry_bytes(dim)
    }

    /// Serialises the node into `page`.
    ///
    /// # Panics
    /// Panics when the node does not fit the page (the tree's config
    /// guarantees it does) or when an entry's dimension differs from `dim`.
    pub fn encode(&self, page: &mut Page, dim: usize) {
        match self {
            Node::Leaf(slab) => {
                assert_eq!(slab.dim(), dim, "leaf entry dimension mismatch");
                page.put_u8(0, 0);
                page.put_u16(
                    1,
                    // analyze::allow(panic): fanout is capped far below u16::MAX by TreeConfig::validate; encode's documented `# Panics` contract covers hand-built oversized nodes.
                    u16::try_from(slab.len()).expect("node entry count overflows u16"),
                );
                let mut off = NODE_HEADER_BYTES;
                for (id, point) in slab.rows() {
                    page.put_u64(off, id);
                    off = page.put_f64_slice(off + 8, point);
                }
            }
            Node::Internal(entries) => {
                page.put_u8(0, 1);
                page.put_u16(
                    1,
                    // analyze::allow(panic): see the leaf arm above.
                    u16::try_from(entries.len()).expect("node entry count overflows u16"),
                );
                let mut off = NODE_HEADER_BYTES;
                for e in entries {
                    assert_eq!(e.mbr.dim(), dim, "internal entry dimension mismatch");
                    page.put_u32(off, e.page.0);
                    off = page.put_f64_slice(off + 4, e.mbr.low());
                    off = page.put_f64_slice(off, e.mbr.high());
                }
            }
        }
    }

    /// Deserialises a node of dimension `dim` from `page`, validating the
    /// layout as it goes.
    ///
    /// Defence in depth behind the page checksum: even bytes that verified
    /// (or arrived through an unchecked channel) are refused unless they
    /// form a well-shaped node — known kind byte, entry count within the
    /// page's fanout, finite coordinates, ordered MBRs, and no sentinel
    /// child pages.
    ///
    /// # Errors
    /// A human-readable diagnosis of the first malformation found; callers
    /// (`RTree::read_node`) wrap it with the page id.
    pub fn decode(page: &Page, dim: usize) -> Result<Node, String> {
        if page.size() < NODE_HEADER_BYTES {
            return Err(format!("page of {} bytes cannot hold a node", page.size()));
        }
        let kind = page.get_u8(0);
        // analyze::allow(cast): u16 → usize widening is lossless.
        let count = page.get_u16(1) as usize;
        let mut off = NODE_HEADER_BYTES;
        match kind {
            0 => {
                let max = Self::max_leaf_fanout(page.size(), dim);
                if count > max {
                    return Err(format!(
                        "leaf entry count {count} exceeds page fanout {max}"
                    ));
                }
                if dim == 0 {
                    return Err("leaf nodes require a positive dimension".to_string());
                }
                let mut slab = LeafSlab::with_capacity(dim, count);
                for i in 0..count {
                    let id = page.get_u64(off);
                    let start = slab.points.len();
                    // Bulk-decode the whole point run straight into the slab.
                    off = page.extend_f64_slice(off + 8, dim, &mut slab.points);
                    if slab.points.iter().skip(start).any(|v| !v.is_finite()) {
                        return Err(format!("leaf entry {i} has a non-finite coordinate"));
                    }
                    slab.ids.push(id);
                }
                Ok(Node::Leaf(slab))
            }
            1 => {
                let max = Self::max_internal_fanout(page.size(), dim);
                if count > max {
                    return Err(format!(
                        "internal entry count {count} exceeds page fanout {max}"
                    ));
                }
                let mut entries = Vec::with_capacity(count);
                for i in 0..count {
                    let child = PageId(page.get_u32(off));
                    if !child.is_valid() {
                        return Err(format!("internal entry {i} points at the sentinel page"));
                    }
                    let mut low = vec![0.0; dim];
                    let mut high = vec![0.0; dim];
                    off = page.get_f64_slice(off + 4, &mut low);
                    off = page.get_f64_slice(off, &mut high);
                    if low.iter().chain(&high).any(|v| !v.is_finite()) {
                        return Err(format!("internal entry {i} has a non-finite coordinate"));
                    }
                    // Pre-check the ordering: `Mbr::new` asserts it.
                    if low.iter().zip(&high).any(|(l, h)| l > h) {
                        return Err(format!("internal entry {i} has an inverted MBR"));
                    }
                    let mbr =
                        Mbr::new(low, high).map_err(|e| format!("internal entry {i}: {e}"))?;
                    entries.push(ChildEntry { mbr, page: child });
                }
                Ok(Node::Internal(entries))
            }
            k => Err(format!("unknown kind byte {k}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsss_storage::DEFAULT_PAGE_SIZE;

    fn leaf_fixture(dim: usize, n: usize) -> Node {
        Node::Leaf(LeafSlab::from_entries(
            dim,
            (0..n).map(|i| {
                DataEntry::new(
                    (0..dim).map(|j| (i * dim + j) as f64 * 0.5).collect(),
                    i as u64 + 1000,
                )
            }),
        ))
    }

    fn internal_fixture(dim: usize, n: usize) -> Node {
        Node::Internal(
            (0..n)
                .map(|i| {
                    let low: Vec<f64> = (0..dim).map(|j| i as f64 + j as f64).collect();
                    let high: Vec<f64> = low.iter().map(|v| v + 1.5).collect();
                    ChildEntry {
                        mbr: Mbr::new(low, high).unwrap(),
                        page: PageId(i as u32 + 7),
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn leaf_roundtrip() {
        let node = leaf_fixture(6, 20);
        let mut page = Page::zeroed(DEFAULT_PAGE_SIZE);
        node.encode(&mut page, 6);
        assert_eq!(Node::decode(&page, 6).unwrap(), node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = internal_fixture(6, 20);
        let mut page = Page::zeroed(DEFAULT_PAGE_SIZE);
        node.encode(&mut page, 6);
        assert_eq!(Node::decode(&page, 6).unwrap(), node);
    }

    #[test]
    fn empty_nodes_roundtrip() {
        let mut page = Page::zeroed(64);
        Node::empty_leaf(3).encode(&mut page, 3);
        assert_eq!(Node::decode(&page, 3).unwrap(), Node::empty_leaf(3));
        Node::Internal(vec![]).encode(&mut page, 3);
        assert_eq!(Node::decode(&page, 3).unwrap(), Node::Internal(vec![]));
    }

    #[test]
    fn paper_configuration_fits_a_4k_page() {
        // d = 6, page 4 KB: internal entry = 100 B, leaf entry = 56 B.
        assert_eq!(Node::internal_entry_bytes(6), 100);
        assert_eq!(Node::leaf_entry_bytes(6), 56);
        // The paper's M = 20 must fit: 3 + 20·100 = 2003 ≤ 4096.
        assert!(Node::max_fanout(DEFAULT_PAGE_SIZE, 6) >= 20);
        assert_eq!(Node::max_fanout(DEFAULT_PAGE_SIZE, 6), (4096 - 3) / 100);
    }

    #[test]
    fn mbr_of_leaf_covers_all_points() {
        let node = leaf_fixture(3, 5);
        let mbr = node.mbr().unwrap();
        if let Node::Leaf(slab) = &node {
            for (_, point) in slab.rows() {
                assert!(mbr.contains_point(point));
            }
        }
    }

    #[test]
    fn mbr_of_internal_covers_all_children() {
        let node = internal_fixture(3, 4);
        let mbr = node.mbr().unwrap();
        if let Node::Internal(entries) = &node {
            for e in entries {
                assert!(mbr.contains_mbr(&e.mbr));
            }
        }
    }

    #[test]
    fn mbr_of_empty_node_is_none() {
        assert!(Node::empty_leaf(2).mbr().is_none());
        assert!(Node::Internal(vec![]).mbr().is_none());
    }

    #[test]
    fn len_and_kind_accessors() {
        let l = leaf_fixture(2, 3);
        assert_eq!(l.len(), 3);
        assert!(l.is_leaf());
        assert!(!l.is_empty());
        let i = internal_fixture(2, 4);
        assert_eq!(i.len(), 4);
        assert!(!i.is_leaf());
    }

    #[test]
    fn corrupt_kind_byte_is_a_typed_error() {
        let mut page = Page::zeroed(64);
        page.put_u8(0, 9);
        let err = Node::decode(&page, 2).unwrap_err();
        assert!(err.contains("unknown kind byte 9"), "{err}");
    }

    #[test]
    fn oversized_entry_count_is_a_typed_error() {
        let mut page = Page::zeroed(64);
        Node::empty_leaf(2).encode(&mut page, 2);
        page.put_u16(1, u16::MAX);
        let err = Node::decode(&page, 2).unwrap_err();
        assert!(err.contains("exceeds page fanout"), "{err}");
    }

    #[test]
    fn non_finite_coordinates_are_a_typed_error() {
        let node = Node::Leaf(LeafSlab::from_entries(
            2,
            [DataEntry::new(vec![1.0, 2.0], 5)],
        ));
        let mut page = Page::zeroed(64);
        node.encode(&mut page, 2);
        page.put_f64(NODE_HEADER_BYTES + 8, f64::NAN);
        let err = Node::decode(&page, 2).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn inverted_mbr_is_a_typed_error() {
        let node = internal_fixture(2, 1);
        let mut page = Page::zeroed(128);
        node.encode(&mut page, 2);
        // Swap low/high of the first dimension: low becomes 9, high stays 1.5.
        page.put_f64(NODE_HEADER_BYTES + 4, 9.0);
        let err = Node::decode(&page, 2).unwrap_err();
        assert!(err.contains("inverted MBR"), "{err}");
    }

    #[test]
    fn sentinel_child_page_is_a_typed_error() {
        let node = internal_fixture(2, 1);
        let mut page = Page::zeroed(128);
        node.encode(&mut page, 2);
        page.put_u32(NODE_HEADER_BYTES, u32::MAX);
        let err = Node::decode(&page, 2).unwrap_err();
        assert!(err.contains("sentinel"), "{err}");
    }

    #[test]
    fn negative_and_extreme_coordinates_roundtrip() {
        let node = Node::Leaf(LeafSlab::from_entries(
            3,
            [
                DataEntry::new(vec![-1e300, 1e-300, -0.0], 0),
                DataEntry::new(vec![f64::MAX, f64::MIN, 0.0], u64::MAX),
            ],
        ));
        let mut page = Page::zeroed(256);
        node.encode(&mut page, 3);
        assert_eq!(Node::decode(&page, 3).unwrap(), node);
    }

    fn slab_and_entries(n: usize) -> (LeafSlab, Vec<DataEntry>) {
        let entries: Vec<DataEntry> = (0..n)
            .map(|i| DataEntry::new(vec![i as f64, (i * 7 % 5) as f64], i as u64))
            .collect();
        (LeafSlab::from_entries(2, entries.clone()), entries)
    }

    /// Every slab mutation must mirror what the same operation did on the
    /// former `Vec<DataEntry>` representation — tree shape (and thus the
    /// blessed equivalence fixtures) depends on it.
    #[test]
    fn slab_mutations_mirror_vec_semantics() {
        // remove == Vec::remove
        let (mut slab, mut vec) = slab_and_entries(6);
        slab.remove(2);
        vec.remove(2);
        assert_eq!(slab, LeafSlab::from_entries(2, vec.clone()));

        // position finds the first exact (point, id) row
        assert_eq!(slab.position(&[4.0, 3.0], 4), Some(3));
        assert_eq!(slab.position(&[4.0, 3.0], 99), None);

        // reorder + drain_front == sort permutation + drain(..p)
        let (mut slab, mut vec) = slab_and_entries(6);
        let order = [5usize, 3, 1, 0, 2, 4];
        slab.reorder(&order);
        let picked: Vec<DataEntry> = order.iter().map(|&i| vec[i].clone()).collect();
        vec = picked;
        let out = slab.drain_front(2);
        let expect: Vec<DataEntry> = vec.drain(..2).collect();
        assert_eq!(out, expect);
        assert_eq!(slab, LeafSlab::from_entries(2, vec.clone()));

        // select picks rows by index list
        let sel = slab.select(&[1, 3]);
        assert_eq!(
            sel,
            LeafSlab::from_entries(2, [vec[1].clone(), vec[3].clone()])
        );

        // into_entries round-trips
        let back: Vec<DataEntry> = slab.into_entries().collect();
        assert_eq!(back, vec);
    }

    #[test]
    fn slab_rows_and_row_agree() {
        let (slab, entries) = slab_and_entries(4);
        for (i, (id, point)) in slab.rows().enumerate() {
            assert_eq!(id, entries[i].id);
            assert_eq!(point, &*entries[i].point);
            assert_eq!(slab.row(i), Some((id, point)));
        }
        assert_eq!(slab.row(4), None);
        assert_eq!(slab.ids().len(), 4);
        assert_eq!(slab.points().len(), 8);
    }
}
