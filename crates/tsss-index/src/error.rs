//! Typed index failures.
//!
//! Everything that can go wrong while the R-tree touches its pages is
//! funnelled into [`IndexError`], so the engine above can tell *damaged
//! index* (fall back to the sequential scan) from *runaway traversal*
//! (abort with a budget error) without string matching.

use tsss_storage::{PageId, StorageError};

/// Errors surfaced by the R-tree's fallible operations.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexError {
    /// The storage layer failed — a checksum mismatch, an injected read
    /// error, or an invalid page reference.
    Storage(StorageError),
    /// A page read back cleanly but does not decode as a well-formed node:
    /// unknown kind byte, impossible entry count, non-finite coordinates,
    /// or an inverted MBR. Defence in depth behind the page checksum.
    CorruptNode {
        /// The page holding the malformed node.
        page: PageId,
        /// Human-readable diagnosis.
        detail: String,
    },
    /// A traversal touched more pages than the caller's per-query budget
    /// allows — the guard against runaway queries over a damaged or
    /// degenerate tree.
    BudgetExhausted {
        /// The exhausted budget (pages).
        budget: u64,
    },
}

impl IndexError {
    /// True when the error indicates damaged index data (as opposed to an
    /// exhausted budget) — the condition the engine may degrade on.
    pub fn is_corruption(&self) -> bool {
        !matches!(self, Self::BudgetExhausted { .. })
    }
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "index storage failure: {e}"),
            Self::CorruptNode { page, detail } => {
                write!(f, "corrupt node on {page}: {detail}")
            }
            Self::BudgetExhausted { budget } => {
                write!(f, "page budget of {budget} accesses exhausted mid-query")
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for IndexError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let cases: Vec<(IndexError, &str)> = vec![
            (
                IndexError::Storage(StorageError::ReadFailed { page: PageId(3) }),
                "index storage failure",
            ),
            (
                IndexError::CorruptNode {
                    page: PageId(5),
                    detail: "unknown kind byte 9".into(),
                },
                "corrupt node on page#5",
            ),
            (IndexError::BudgetExhausted { budget: 64 }, "budget of 64"),
        ];
        for (err, fragment) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(fragment),
                "{msg:?} should contain {fragment:?}"
            );
        }
    }

    #[test]
    fn corruption_classification() {
        assert!(IndexError::Storage(StorageError::InvalidPageId).is_corruption());
        assert!(IndexError::CorruptNode {
            page: PageId(0),
            detail: String::new()
        }
        .is_corruption());
        assert!(!IndexError::BudgetExhausted { budget: 1 }.is_corruption());
    }
}
