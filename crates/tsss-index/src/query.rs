//! Search operations over the R-tree.
//!
//! The paper's searching step (§6) is the **line-penetration query**: given
//! the query's SE-line and an error bound ε, traverse only the children
//! whose ε-MBR is penetrated by the line (Theorem 3); at the leaves, keep
//! every point within ε of the line (Theorem 2). [`RTree::line_query`]
//! implements exactly that with a pluggable [`PenetrationMethod`] — the
//! paper's experiment sets 2 and 3 differ only in that plug.
//!
//! Conventional box and radius queries are also provided: they are the
//! ground-truth oracles in the tests and the building blocks of the
//! baselines.

use tsss_geometry::line::{pld_sq, Line};
use tsss_geometry::penetration::{penetrates, PenetrationMethod, SphereStats};
use tsss_geometry::Mbr;

use crate::error::IndexError;
use crate::node::Node;
use crate::tree::RTree;

/// Per-query traversal statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LineQueryStats {
    /// Internal nodes visited.
    pub internal_visited: u64,
    /// Leaf nodes visited.
    pub leaves_visited: u64,
    /// Leaf entries distance-checked.
    pub candidates_checked: u64,
    /// MBR penetration tests performed.
    pub penetration_tests: u64,
    /// How the bounding-sphere heuristic resolved (only populated under
    /// [`PenetrationMethod::BoundingSpheres`]).
    pub sphere: SphereStats,
}

impl LineQueryStats {
    /// Accumulates another traversal's counters into this one — e.g. a
    /// multi-probe query (one index probe per piece of a long query)
    /// reporting a single set of index statistics.
    pub fn merge(&mut self, other: &LineQueryStats) {
        self.internal_visited += other.internal_visited;
        self.leaves_visited += other.leaves_visited;
        self.candidates_checked += other.candidates_checked;
        self.penetration_tests += other.penetration_tests;
        self.sphere.merge(&other.sphere);
    }
}

/// A match returned by a query: the stored point, its record id and its
/// distance to the query object (line or point).
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Record identifier supplied at insertion time.
    pub id: u64,
    /// The indexed point.
    pub point: Vec<f64>,
    /// Distance to the query object.
    pub distance: f64,
}

/// Result of a query: matches plus traversal statistics.
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// All matching entries (unordered).
    pub matches: Vec<Match>,
    /// Traversal statistics.
    pub stats: LineQueryStats,
}

impl RTree {
    /// Fails the traversal once it has already visited `budget` pages and
    /// is about to visit one more.
    fn charge(budget: Option<u64>, stats: &LineQueryStats) -> Result<(), IndexError> {
        match budget {
            Some(b) if stats.internal_visited + stats.leaves_visited >= b => {
                Err(IndexError::BudgetExhausted { budget: b })
            }
            _ => Ok(()),
        }
    }

    /// The paper's search (§6): every indexed point within `epsilon` of
    /// `line`, pruned by ε-MBR penetration (Theorem 3).
    ///
    /// # Errors
    /// Any storage or decoding failure met during the traversal.
    ///
    /// # Panics
    /// Panics when the line's dimension differs from the tree's.
    pub fn line_query(
        &self,
        line: &Line,
        epsilon: f64,
        method: PenetrationMethod,
    ) -> Result<QueryOutcome, IndexError> {
        self.line_query_with_budget(line, epsilon, method, None)
    }

    /// [`RTree::line_query`] with an optional per-query page-access budget:
    /// the traversal aborts with [`IndexError::BudgetExhausted`] before
    /// visiting page `budget + 1` — the guard against runaway queries over
    /// a damaged or degenerate tree.
    ///
    /// # Errors
    /// [`IndexError::BudgetExhausted`] when the budget runs out, or any
    /// storage/decoding failure.
    ///
    /// # Panics
    /// Panics when the line's dimension differs from the tree's.
    pub fn line_query_with_budget(
        &self,
        line: &Line,
        epsilon: f64,
        method: PenetrationMethod,
        budget: Option<u64>,
    ) -> Result<QueryOutcome, IndexError> {
        assert_eq!(line.dim(), self.config().dim, "line dimension mismatch");
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        let mut out = QueryOutcome::default();
        let eps_sq = epsilon * epsilon;
        let root = self.root_page();
        self.line_query_node(root, line, epsilon, eps_sq, method, budget, &mut out)?;
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn line_query_node(
        &self,
        page: tsss_storage::PageId,
        line: &Line,
        epsilon: f64,
        eps_sq: f64,
        method: PenetrationMethod,
        budget: Option<u64>,
        out: &mut QueryOutcome,
    ) -> Result<(), IndexError> {
        Self::charge(budget, &out.stats)?;
        match self.read_node(page)? {
            Node::Leaf(slab) => {
                out.stats.leaves_visited += 1;
                for (id, point) in slab.rows() {
                    out.stats.candidates_checked += 1;
                    let d_sq = pld_sq(point, line);
                    if d_sq <= eps_sq {
                        out.matches.push(Match {
                            id,
                            point: point.to_vec(),
                            distance: d_sq.sqrt(),
                        });
                    }
                }
            }
            Node::Internal(entries) => {
                out.stats.internal_visited += 1;
                for e in entries {
                    out.stats.penetration_tests += 1;
                    let enlarged = e.mbr.enlarged(epsilon);
                    if penetrates(line, &enlarged, method, &mut out.stats.sphere) {
                        self.line_query_node(e.page, line, epsilon, eps_sq, method, budget, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// All points contained in `query_box` (a classic R-tree window query).
    ///
    /// # Errors
    /// Any storage or decoding failure met during the traversal.
    pub fn box_query(&self, query_box: &Mbr) -> Result<QueryOutcome, IndexError> {
        assert_eq!(query_box.dim(), self.config().dim, "box dimension mismatch");
        let mut out = QueryOutcome::default();
        let root = self.root_page();
        self.box_query_node(root, query_box, &mut out)?;
        Ok(out)
    }

    fn box_query_node(
        &self,
        page: tsss_storage::PageId,
        query_box: &Mbr,
        out: &mut QueryOutcome,
    ) -> Result<(), IndexError> {
        match self.read_node(page)? {
            Node::Leaf(slab) => {
                out.stats.leaves_visited += 1;
                for (id, point) in slab.rows() {
                    out.stats.candidates_checked += 1;
                    if query_box.contains_point(point) {
                        out.matches.push(Match {
                            id,
                            point: point.to_vec(),
                            distance: 0.0,
                        });
                    }
                }
            }
            Node::Internal(entries) => {
                out.stats.internal_visited += 1;
                for e in entries {
                    if e.mbr.intersects(query_box) {
                        self.box_query_node(e.page, query_box, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// All points within Euclidean distance `radius` of `center` — the
    /// F-index style range query, used by baselines and tests.
    ///
    /// # Errors
    /// Any storage or decoding failure met during the traversal.
    pub fn radius_query(&self, center: &[f64], radius: f64) -> Result<QueryOutcome, IndexError> {
        self.radius_query_with_budget(center, radius, None)
    }

    /// [`RTree::radius_query`] with an optional per-query page-access
    /// budget (see [`RTree::line_query_with_budget`]).
    ///
    /// # Errors
    /// [`IndexError::BudgetExhausted`] when the budget runs out, or any
    /// storage/decoding failure.
    pub fn radius_query_with_budget(
        &self,
        center: &[f64],
        radius: f64,
        budget: Option<u64>,
    ) -> Result<QueryOutcome, IndexError> {
        assert_eq!(center.len(), self.config().dim, "center dimension mismatch");
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = QueryOutcome::default();
        let root = self.root_page();
        self.radius_query_node(root, center, radius * radius, budget, &mut out)?;
        Ok(out)
    }

    fn radius_query_node(
        &self,
        page: tsss_storage::PageId,
        center: &[f64],
        radius_sq: f64,
        budget: Option<u64>,
        out: &mut QueryOutcome,
    ) -> Result<(), IndexError> {
        Self::charge(budget, &out.stats)?;
        match self.read_node(page)? {
            Node::Leaf(slab) => {
                out.stats.leaves_visited += 1;
                for (id, point) in slab.rows() {
                    out.stats.candidates_checked += 1;
                    let d_sq = tsss_geometry::vector::dist_sq(point, center);
                    if d_sq <= radius_sq {
                        out.matches.push(Match {
                            id,
                            point: point.to_vec(),
                            distance: d_sq.sqrt(),
                        });
                    }
                }
            }
            Node::Internal(entries) => {
                out.stats.internal_visited += 1;
                for e in entries {
                    if e.mbr.min_dist_sq_to_point(center) <= radius_sq {
                        self.radius_query_node(e.page, center, radius_sq, budget, out)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{SplitPolicy, TreeConfig};

    fn cfg() -> TreeConfig {
        TreeConfig::uniform(2, 1024, 8, 3, 2, SplitPolicy::RStar, 0)
    }

    fn build(n: usize) -> (RTree, Vec<Vec<f64>>) {
        let mut t = RTree::new(cfg()).unwrap();
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![((i * 37) % 101) as f64, ((i * 61) % 97) as f64])
            .collect();
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        (t, pts)
    }

    #[test]
    fn box_query_matches_linear_filter() {
        let (t, pts) = build(200);
        let qb = Mbr::new(vec![20.0, 10.0], vec![60.0, 50.0]).unwrap();
        let got: std::collections::BTreeSet<u64> = t
            .box_query(&qb)
            .unwrap()
            .matches
            .iter()
            .map(|m| m.id)
            .collect();
        let want: std::collections::BTreeSet<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| qb.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(got, want);
        assert!(!want.is_empty(), "fixture should have matches");
    }

    #[test]
    fn radius_query_matches_linear_filter() {
        let (t, pts) = build(200);
        let center = [50.0, 50.0];
        let r = 25.0;
        let got: std::collections::BTreeSet<u64> = t
            .radius_query(&center, r)
            .unwrap()
            .matches
            .iter()
            .map(|m| m.id)
            .collect();
        let want: std::collections::BTreeSet<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| tsss_geometry::vector::dist(p, &center) <= r)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn line_query_matches_linear_filter_for_both_methods() {
        let (t, pts) = build(300);
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 0.9]).unwrap();
        for method in [
            PenetrationMethod::EnteringExiting,
            PenetrationMethod::BoundingSpheres,
        ] {
            for eps in [0.0, 1.0, 5.0, 20.0] {
                let got: std::collections::BTreeSet<u64> = t
                    .line_query(&line, eps, method)
                    .unwrap()
                    .matches
                    .iter()
                    .map(|m| m.id)
                    .collect();
                let want: std::collections::BTreeSet<u64> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| pld_sq(p, &line) <= eps * eps + 1e-12)
                    .map(|(i, _)| i as u64)
                    .collect();
                assert_eq!(got, want, "method {method:?}, eps {eps}");
            }
        }
    }

    #[test]
    fn line_query_reports_distances() {
        let (t, _) = build(100);
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let out = t
            .line_query(&line, 10.0, PenetrationMethod::EnteringExiting)
            .unwrap();
        for m in &out.matches {
            let expect = pld_sq(&m.point, &line).sqrt();
            assert!((m.distance - expect).abs() < 1e-9);
            assert!(m.distance <= 10.0 + 1e-9);
        }
    }

    #[test]
    fn pruning_visits_fewer_leaves_than_full_scan() {
        let (t, _) = build(500);
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 0.0]).unwrap();
        let out = t
            .line_query(&line, 1.0, PenetrationMethod::EnteringExiting)
            .unwrap();
        // A thin strip query should not need every leaf.
        let total_leaves = {
            let full = t
                .box_query(&Mbr::new(vec![-1e9, -1e9], vec![1e9, 1e9]).unwrap())
                .unwrap();
            full.stats.leaves_visited
        };
        assert!(
            out.stats.leaves_visited < total_leaves,
            "no pruning happened: {} vs {}",
            out.stats.leaves_visited,
            total_leaves
        );
    }

    #[test]
    fn sphere_stats_populated_only_for_sphere_method() {
        let (t, _) = build(300);
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 2.0]).unwrap();
        let plain = t
            .line_query(&line, 2.0, PenetrationMethod::EnteringExiting)
            .unwrap();
        assert_eq!(plain.stats.sphere.total(), 0);
        let sph = t
            .line_query(&line, 2.0, PenetrationMethod::BoundingSpheres)
            .unwrap();
        assert_eq!(
            sph.stats.sphere.total(),
            sph.stats.penetration_tests,
            "every test should be classified"
        );
    }

    #[test]
    fn empty_tree_queries_return_nothing() {
        let t = RTree::new(cfg()).unwrap();
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(t
            .line_query(&line, 100.0, PenetrationMethod::EnteringExiting)
            .unwrap()
            .matches
            .is_empty());
        assert!(t
            .radius_query(&[0.0, 0.0], 100.0)
            .unwrap()
            .matches
            .is_empty());
    }

    #[test]
    fn zero_epsilon_line_query_finds_points_on_the_line() {
        let mut t = RTree::new(cfg()).unwrap();
        for i in 0..50 {
            t.insert(vec![i as f64, i as f64], i).unwrap(); // on the diagonal
            t.insert(vec![i as f64, i as f64 + 5.0], 100 + i).unwrap(); // off it
        }
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let out = t
            .line_query(&line, 0.0, PenetrationMethod::EnteringExiting)
            .unwrap();
        assert_eq!(out.matches.len(), 50);
        assert!(out.matches.iter().all(|m| m.id < 100));
    }

    #[test]
    fn page_reads_equal_nodes_visited() {
        let (t, _) = build(400);
        t.stats().reset();
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 1.3]).unwrap();
        let out = t
            .line_query(&line, 3.0, PenetrationMethod::EnteringExiting)
            .unwrap();
        assert_eq!(
            t.stats().reads(),
            out.stats.internal_visited + out.stats.leaves_visited,
            "every visited node is exactly one page read"
        );
        assert_eq!(t.stats().writes(), 0, "queries never write");
    }

    #[test]
    fn budget_aborts_with_a_typed_error_and_counts_pages_exactly() {
        let (t, _) = build(500);
        let line = Line::new(vec![0.0, 0.0], vec![1.0, 1.3]).unwrap();
        let full = t
            .line_query_with_budget(&line, 3.0, PenetrationMethod::EnteringExiting, None)
            .unwrap();
        let needed = full.stats.internal_visited + full.stats.leaves_visited;
        assert!(needed > 1);
        // One page short of enough: must abort with BudgetExhausted.
        t.stats().reset();
        let err = t
            .line_query_with_budget(
                &line,
                3.0,
                PenetrationMethod::EnteringExiting,
                Some(needed - 1),
            )
            .unwrap_err();
        assert_eq!(err, IndexError::BudgetExhausted { budget: needed - 1 });
        assert!(
            t.stats().reads() < needed,
            "budget must bound actual page reads"
        );
        // Exactly enough: same answer as unbudgeted.
        let again = t
            .line_query_with_budget(&line, 3.0, PenetrationMethod::EnteringExiting, Some(needed))
            .unwrap();
        assert_eq!(again.matches.len(), full.matches.len());
    }

    #[test]
    fn zero_budget_rejects_even_the_root_visit() {
        let (t, _) = build(50);
        let err = t
            .radius_query_with_budget(&[0.0, 0.0], 10.0, Some(0))
            .unwrap_err();
        assert_eq!(err, IndexError::BudgetExhausted { budget: 0 });
    }
}
