//! The disk-resident R-tree / R*-tree.
//!
//! Structure and parameters follow the paper's §6–§7: a height-balanced tree
//! with between `m` and `M` entries per node (root exempt), one node per
//! page, `M = 20`, `m = 40 %·M = 8`, and (for the R*-tree) forced
//! reinsertion of `p = 30 %·M = 6` entries on first overflow per level
//! (Beckmann et al. \[16\]). Guttman's original linear- and quadratic-split
//! R-trees \[22\] are available through [`SplitPolicy`] for the `ablation_tree`
//! bench.
//!
//! Every node read/write goes through the buffer pool, so the paper's page
//! access metric (Figure 5) falls directly out of [`RTree::stats`].

// analyze::allow-file(index): subtree choices (`entries[chosen]`), reinsert drains (`drain(..p)` with `p < min_entries <= len`) and deletion positions all come from scans of the very vector they index, performed under the fanout bounds `caps()` maintains on every node.

// analyze::allow-file(panic): the `expect`s unwrap MBRs of nodes proven non-empty on the same path (an entry was just pushed, or the min-entries invariant held before removal), and the `unreachable!`s restate the level↔node-kind correspondence the insertion recursion maintains; structurally corrupt pages are rejected earlier, as typed errors, by the checksummed `read_node`/`Node::decode` path.

use tsss_geometry::Mbr;
use tsss_storage::{BufferPool, Page, PageFile, PageId, PageStore, DEFAULT_PAGE_SIZE};

use crate::error::IndexError;
use crate::node::{ChildEntry, DataEntry, Node, NODE_HEADER_BYTES};
use crate::split::{linear_split, quadratic_split, rstar_split, SplitGroups};

/// Which split algorithm (and hence which classic index) the tree runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// R*-tree: margin-driven split axis + overlap-driven split index +
    /// forced reinsertion (the paper's experimental index).
    #[default]
    RStar,
    /// Guttman's quadratic split, no reinsertion.
    GuttmanQuadratic,
    /// Guttman's linear split, no reinsertion.
    GuttmanLinear,
}

/// Static configuration of an [`RTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeConfig {
    /// Dimension of the indexed points.
    pub dim: usize,
    /// Page size in bytes (one node per page).
    pub page_size: usize,
    /// Maximum entries per internal node (`M`).
    pub max_entries: usize,
    /// Minimum entries per internal node (`m`), root exempt.
    pub min_entries: usize,
    /// Entries removed on forced reinsertion of an internal node (`p`);
    /// R* policy only.
    pub reinsert_count: usize,
    /// Maximum entries per leaf node (the paper fixes `M = 20` for
    /// *internal* nodes only; leaves pack as many entries as the page
    /// holds).
    pub leaf_max_entries: usize,
    /// Minimum entries per leaf node, root exempt.
    pub leaf_min_entries: usize,
    /// Entries removed on forced reinsertion of a leaf; R* policy only.
    pub leaf_reinsert_count: usize,
    /// Split algorithm.
    pub split: SplitPolicy,
    /// Buffer-pool frames (0 = unbuffered, the paper's measurement regime).
    pub buffer_frames: usize,
}

impl TreeConfig {
    /// The paper's exact configuration for a given dimension: 4 KB pages,
    /// one node per page, internal `M = 20`, `m = 8` (40 %), `p = 6` (30 %),
    /// leaves packed to page capacity with the same 40 %/30 % ratios,
    /// R*-tree splits, no buffer.
    pub fn paper(dim: usize) -> Self {
        let leaf_max = Node::max_leaf_fanout(DEFAULT_PAGE_SIZE, dim);
        Self {
            dim,
            page_size: DEFAULT_PAGE_SIZE,
            max_entries: 20,
            min_entries: 8,
            reinsert_count: 6,
            leaf_max_entries: leaf_max,
            leaf_min_entries: (leaf_max * 2) / 5,
            leaf_reinsert_count: (leaf_max * 3) / 10,
            split: SplitPolicy::RStar,
            buffer_frames: 0,
        }
    }

    /// A configuration using the same `M`/`m`/`p` for leaves and internal
    /// nodes (convenient for tests and ablations).
    pub fn uniform(
        dim: usize,
        page_size: usize,
        max_entries: usize,
        min_entries: usize,
        reinsert_count: usize,
        split: SplitPolicy,
        buffer_frames: usize,
    ) -> Self {
        Self {
            dim,
            page_size,
            max_entries,
            min_entries,
            reinsert_count,
            leaf_max_entries: max_entries,
            leaf_min_entries: min_entries,
            leaf_reinsert_count: reinsert_count,
            split,
            buffer_frames,
        }
    }

    /// Capacity bounds `(max, min, reinsert)` for a node kind.
    pub(crate) fn caps(&self, leaf: bool) -> (usize, usize, usize) {
        if leaf {
            (
                self.leaf_max_entries,
                self.leaf_min_entries,
                self.leaf_reinsert_count,
            )
        } else {
            (self.max_entries, self.min_entries, self.reinsert_count)
        }
    }

    /// Validates internal consistency and that a full node fits a page.
    ///
    /// # Panics
    /// Panics with a descriptive message on any violation — configurations
    /// are static programmer input, not runtime data. For configurations
    /// decoded from untrusted bytes use [`TreeConfig::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Non-panicking validation for configurations read back from persisted
    /// (possibly corrupted) streams.
    ///
    /// # Errors
    /// A descriptive message for the first violation found.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.dim < 1 {
            return Err("dimension must be at least 1".into());
        }
        if self.page_size <= NODE_HEADER_BYTES {
            return Err(format!(
                "page size {} cannot hold a node header",
                self.page_size
            ));
        }
        for (label, max, min, p, fanout) in [
            (
                "internal",
                self.max_entries,
                self.min_entries,
                self.reinsert_count,
                Node::max_internal_fanout(self.page_size, self.dim),
            ),
            (
                "leaf",
                self.leaf_max_entries,
                self.leaf_min_entries,
                self.leaf_reinsert_count,
                Node::max_leaf_fanout(self.page_size, self.dim),
            ),
        ] {
            if max < 4 {
                return Err(format!("{label} M must be at least 4"));
            }
            if min < 2 || 2 * min > max {
                return Err(format!(
                    "need 2 <= m <= M/2 for {label} nodes (got m = {min}, M = {max})"
                ));
            }
            if p >= max {
                return Err(format!("{label} reinsert count p must be < M"));
            }
            if max > fanout {
                return Err(format!(
                    "{label} M = {max} exceeds page fanout {fanout} at dim {} / page {}",
                    self.dim, self.page_size
                ));
            }
        }
        Ok(())
    }
}

/// An item being (re)inserted, tagged by the tree level it belongs at:
/// data entries live at level 0, child entries at the level of the node
/// that should adopt them.
#[derive(Debug, Clone)]
enum InsertItem {
    Data(DataEntry),
    Child(ChildEntry),
}

impl InsertItem {
    fn mbr(&self, _dim: usize) -> Mbr {
        match self {
            InsertItem::Data(e) => Mbr::point(&e.point),
            InsertItem::Child(e) => e.mbr.clone(),
        }
    }
}

/// Result bubbling up from a recursive insertion.
enum UpResult {
    /// Child absorbed the insertion; its new MBR is attached.
    Done(Mbr),
    /// Child split; its new MBR plus the fresh sibling entry.
    Split(Mbr, ChildEntry),
}

/// A disk-resident R-tree over `dim`-dimensional points with `u64` record
/// ids.
///
/// ```
/// use tsss_index::{RTree, SplitPolicy, TreeConfig};
/// use tsss_geometry::line::Line;
/// use tsss_geometry::penetration::PenetrationMethod;
///
/// let cfg = TreeConfig::uniform(2, 1024, 8, 3, 2, SplitPolicy::RStar, 0);
/// let mut tree = RTree::new(cfg).unwrap();
/// for i in 0..100u64 {
///     tree.insert(vec![i as f64, (i % 7) as f64], i).unwrap();
/// }
/// // All points within 0.5 of the x-axis:
/// let axis = Line::new(vec![0.0, 0.0], vec![1.0, 0.0]).unwrap();
/// let hits = tree
///     .line_query(&axis, 0.5, PenetrationMethod::EnteringExiting)
///     .unwrap();
/// assert!(hits.matches.iter().all(|m| m.point[1] <= 0.5));
/// ```
#[derive(Debug)]
pub struct RTree {
    cfg: TreeConfig,
    pub(crate) pool: BufferPool,
    root: PageId,
    /// Number of levels; 1 means the root is a leaf. Leaves are level 0.
    height: usize,
    len: usize,
}

impl RTree {
    /// Creates an empty tree with the given configuration.
    ///
    /// # Errors
    /// Any storage failure while allocating and writing the root page.
    ///
    /// # Panics
    /// Panics when the configuration is invalid (see
    /// [`TreeConfig::validate`]).
    pub fn new(cfg: TreeConfig) -> Result<Self, IndexError> {
        cfg.validate();
        let file = PageFile::new(cfg.page_size)?;
        let mut pool = BufferPool::new(file, cfg.buffer_frames);
        let root = pool.allocate()?;
        let mut tree = Self {
            cfg,
            pool,
            root,
            height: 1,
            len: 0,
        };
        tree.write_node(root, &Node::empty_leaf(tree.cfg.dim))?;
        Ok(tree)
    }

    /// The tree's configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.cfg
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Root page id (exposed for white-box tests).
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Shared page-access counters (the Figure 5 metric).
    pub fn stats(&self) -> std::sync::Arc<tsss_storage::AccessStats> {
        self.pool.stats()
    }

    /// Drops cached buffer frames so the next query starts cold.
    ///
    /// # Errors
    /// Any storage failure while writing dirty frames back.
    pub fn clear_cache(&self) -> Result<(), IndexError> {
        Ok(self.pool.clear_cache()?)
    }

    /// Flushes cached frames and runs `f` against the backing page store
    /// (used by persistence).
    pub(crate) fn with_store<R>(
        &self,
        f: impl FnOnce(&dyn PageStore) -> R,
    ) -> Result<R, IndexError> {
        Ok(self.pool.with_store(f)?)
    }

    /// Slides a [`PageStore`] decorator (e.g. a fault injector) under the
    /// tree's buffer pool. Cached frames are dropped, not written back.
    pub fn wrap_store(&mut self, wrap: impl FnOnce(Box<dyn PageStore>) -> Box<dyn PageStore>) {
        self.pool.wrap_store(wrap);
    }

    /// Mutates the raw bytes of `page` beneath the checksum layer; the
    /// damage is detected (as a typed error) on the next read. Chaos-test
    /// hook.
    ///
    /// # Errors
    /// [`tsss_storage::StorageError`] when `page` is invalid or the store
    /// rejects the mutation.
    pub fn corrupt_page(
        &mut self,
        page: PageId,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> Result<(), IndexError> {
        Ok(self.pool.corrupt_page(page, f)?)
    }

    /// Number of pages in the backing store (allocated plus freed).
    pub fn extent(&self) -> usize {
        self.pool.extent()
    }

    pub(crate) fn read_node(&self, page: PageId) -> Result<Node, IndexError> {
        let p = self.pool.read(page)?;
        Node::decode(&p, self.cfg.dim).map_err(|detail| IndexError::CorruptNode { page, detail })
    }

    pub(crate) fn write_node(&mut self, page: PageId, node: &Node) -> Result<(), IndexError> {
        let mut p = Page::zeroed(self.cfg.page_size);
        node.encode(&mut p, self.cfg.dim);
        Ok(self.pool.write(page, p)?)
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts a point with its record id.
    ///
    /// # Errors
    /// Any storage or decoding failure met on the way down. On error the
    /// tree may have been partially updated; callers treating the index as
    /// damaged should fall back to a sequential scan.
    ///
    /// # Panics
    /// Panics when the point's dimension differs from the configuration.
    pub fn insert(&mut self, point: Vec<f64>, id: u64) -> Result<(), IndexError> {
        assert_eq!(
            point.len(),
            self.cfg.dim,
            "point dimension {} != tree dimension {}",
            point.len(),
            self.cfg.dim
        );
        self.len += 1;
        let mut pending: Vec<(InsertItem, usize)> =
            vec![(InsertItem::Data(DataEntry::new(point, id)), 0)];
        // `reinserted[l]` — whether forced reinsertion already ran at level
        // l during this logical insertion (R* runs it at most once per
        // level).
        let mut reinserted = vec![false; self.height];
        while let Some((item, level)) = pending.pop() {
            reinserted.resize(self.height, true); // levels created later never reinsert
            self.insert_from_root(item, level, &mut reinserted, &mut pending)?;
        }
        Ok(())
    }

    fn insert_from_root(
        &mut self,
        item: InsertItem,
        target_level: usize,
        reinserted: &mut [bool],
        pending: &mut Vec<(InsertItem, usize)>,
    ) -> Result<(), IndexError> {
        let root = self.root;
        let root_level = self.height - 1;
        match self.insert_at(root, root_level, item, target_level, reinserted, pending)? {
            UpResult::Done(_) => {}
            UpResult::Split(old_mbr, new_entry) => {
                // Grow a new root above the old one.
                let old_root_entry = ChildEntry {
                    mbr: old_mbr,
                    page: self.root,
                };
                let new_root = self.pool.allocate()?;
                self.write_node(new_root, &Node::Internal(vec![old_root_entry, new_entry]))?;
                self.root = new_root;
                self.height += 1;
            }
        }
        Ok(())
    }

    /// Recursive insertion of `item` (destined for `target_level`) into the
    /// node at `page` (which sits at `level`).
    fn insert_at(
        &mut self,
        page: PageId,
        level: usize,
        item: InsertItem,
        target_level: usize,
        reinserted: &mut [bool],
        pending: &mut Vec<(InsertItem, usize)>,
    ) -> Result<UpResult, IndexError> {
        let mut node = self.read_node(page)?;
        if level == target_level {
            match (&mut node, item) {
                (Node::Leaf(slab), InsertItem::Data(e)) => slab.push_entry(e),
                (Node::Internal(entries), InsertItem::Child(e)) => entries.push(e),
                _ => unreachable!("level/kind mismatch during insertion"),
            }
        } else {
            let Node::Internal(entries) = &mut node else {
                unreachable!("reached a leaf above the target level")
            };
            let item_mbr = item.mbr(self.cfg.dim);
            let chosen = Self::choose_subtree(entries, &item_mbr, level == target_level + 1);
            let child_page = entries[chosen].page;
            match self.insert_at(
                child_page,
                level - 1,
                item,
                target_level,
                reinserted,
                pending,
            )? {
                UpResult::Done(child_mbr) => {
                    // Re-read: recursion may have rewritten this very page
                    // via reinsertion passing through it? No — reinsertions
                    // are deferred to `pending`, so our in-memory copy is
                    // still current. Just refresh the child MBR.
                    node = {
                        let Node::Internal(mut entries) = node else {
                            unreachable!()
                        };
                        entries[chosen].mbr = child_mbr;
                        Node::Internal(entries)
                    };
                }
                UpResult::Split(child_mbr, new_entry) => {
                    let Node::Internal(entries) = &mut node else {
                        unreachable!()
                    };
                    entries[chosen].mbr = child_mbr;
                    entries.push(new_entry);
                }
            }
        }

        let (max, _, _) = self.cfg.caps(node.is_leaf());
        if node.len() > max {
            self.overflow(page, level, node, reinserted, pending)
        } else {
            let mbr = node.mbr().expect("non-empty node after insertion");
            self.write_node(page, &node)?;
            Ok(UpResult::Done(mbr))
        }
    }

    /// R*-tree ChooseSubtree: at the level just above the target, minimise
    /// overlap enlargement (ties: area enlargement, then area); higher up,
    /// minimise area enlargement (ties: area). Guttman trees use the area
    /// rule everywhere.
    fn choose_subtree(entries: &[ChildEntry], item: &Mbr, leaf_level: bool) -> usize {
        debug_assert!(!entries.is_empty());
        if leaf_level {
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, e) in entries.iter().enumerate() {
                let enlarged = e.mbr.union(item);
                let mut overlap_delta = 0.0;
                for (j, other) in entries.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    overlap_delta += enlarged.overlap(&other.mbr) - e.mbr.overlap(&other.mbr);
                }
                let key = (overlap_delta, e.mbr.enlargement_for(item), e.mbr.volume());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, e) in entries.iter().enumerate() {
                let key = (e.mbr.enlargement_for(item), e.mbr.volume());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    /// OverflowTreatment: forced reinsert (once per level per insertion,
    /// R* only, never at the root) or split.
    fn overflow(
        &mut self,
        page: PageId,
        level: usize,
        node: Node,
        reinserted: &mut [bool],
        pending: &mut Vec<(InsertItem, usize)>,
    ) -> Result<UpResult, IndexError> {
        let is_root = page == self.root;
        let (_, _, reinsert_count) = self.cfg.caps(node.is_leaf());
        let use_reinsert = self.cfg.split == SplitPolicy::RStar
            && reinsert_count > 0
            && !is_root
            && level < reinserted.len()
            && !reinserted[level];
        if use_reinsert {
            reinserted[level] = true;
            return self.force_reinsert(page, level, node, pending);
        }
        self.split_node(page, node)
    }

    /// Forced reinsertion (R* §4.3): remove the `p` entries whose centres
    /// are farthest from the node's MBR centre and queue them for
    /// reinsertion at this level.
    fn force_reinsert(
        &mut self,
        page: PageId,
        level: usize,
        node: Node,
        pending: &mut Vec<(InsertItem, usize)>,
    ) -> Result<UpResult, IndexError> {
        let (_, _, p) = self.cfg.caps(node.is_leaf());
        let center = node.mbr().expect("overflowing node is non-empty").center();
        let dist_to = |m: &Mbr| -> f64 {
            m.center()
                .iter()
                .zip(&center)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        let node = match node {
            Node::Leaf(mut slab) => {
                // Stable index sort by descending centre distance — the same
                // permutation a stable `sort_by` over row-structured entries
                // produced before the slab layout.
                let keys: Vec<f64> = slab
                    .rows()
                    .map(|(_, pt)| dist_to(&Mbr::point(pt)))
                    .collect();
                let mut order: Vec<usize> = (0..slab.len()).collect();
                order.sort_by(|&a, &b| {
                    keys[b]
                        .partial_cmp(&keys[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                slab.reorder(&order);
                for e in slab.drain_front(p) {
                    pending.push((InsertItem::Data(e), level));
                }
                Node::Leaf(slab)
            }
            Node::Internal(mut entries) => {
                entries.sort_by(|a, b| {
                    dist_to(&b.mbr)
                        .partial_cmp(&dist_to(&a.mbr))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for e in entries.drain(..p) {
                    pending.push((InsertItem::Child(e), level));
                }
                Node::Internal(entries)
            }
        };
        let mbr = node.mbr().expect("entries remain after reinsert removal");
        self.write_node(page, &node)?;
        Ok(UpResult::Done(mbr))
    }

    /// Splits an overflowing node into two, returning the surviving node's
    /// MBR and the new sibling's entry.
    fn split_node(&mut self, page: PageId, node: Node) -> Result<UpResult, IndexError> {
        let groups = self.run_split_policy(&node);
        let (kept, sibling) = Self::partition(node, &groups);
        let kept_mbr = kept.mbr().expect("split group one non-empty");
        let sib_mbr = sibling.mbr().expect("split group two non-empty");
        let sib_page = self.pool.allocate()?;
        self.write_node(page, &kept)?;
        self.write_node(sib_page, &sibling)?;
        Ok(UpResult::Split(
            kept_mbr,
            ChildEntry {
                mbr: sib_mbr,
                page: sib_page,
            },
        ))
    }

    fn run_split_policy(&self, node: &Node) -> SplitGroups {
        let mbrs: Vec<Mbr> = match node {
            Node::Leaf(v) => v.rows().map(|(_, pt)| Mbr::point(pt)).collect(),
            Node::Internal(v) => v.iter().map(|e| e.mbr.clone()).collect(),
        };
        let (_, min, _) = self.cfg.caps(node.is_leaf());
        match self.cfg.split {
            SplitPolicy::RStar => rstar_split(&mbrs, min),
            SplitPolicy::GuttmanQuadratic => quadratic_split(&mbrs, min),
            SplitPolicy::GuttmanLinear => linear_split(&mbrs, min),
        }
    }

    fn partition(node: Node, groups: &SplitGroups) -> (Node, Node) {
        match node {
            Node::Leaf(slab) => (
                Node::Leaf(slab.select(&groups.first)),
                Node::Leaf(slab.select(&groups.second)),
            ),
            Node::Internal(entries) => {
                let pick = |idxs: &[usize]| -> Vec<ChildEntry> {
                    idxs.iter().map(|&i| entries[i].clone()).collect()
                };
                (
                    Node::Internal(pick(&groups.first)),
                    Node::Internal(pick(&groups.second)),
                )
            }
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes the entry with the given point and id. Returns `true` when an
    /// entry was found and removed.
    ///
    /// Underflowing nodes are dissolved and their entries reinserted
    /// (Guttman's CondenseTree), satisfying the paper's "dynamic index"
    /// requirement for data that arrives and expires continuously.
    ///
    /// # Errors
    /// Any storage or decoding failure met on the way; the tree may have
    /// been partially updated.
    pub fn delete(&mut self, point: &[f64], id: u64) -> Result<bool, IndexError> {
        assert_eq!(point.len(), self.cfg.dim, "point dimension mismatch");
        let mut orphans: Vec<(InsertItem, usize)> = Vec::new();
        let root = self.root;
        let root_level = self.height - 1;
        let found = match self.delete_at(root, root_level, point, id, &mut orphans)? {
            DeleteOutcome::NotFound => false,
            DeleteOutcome::Removed => true,
        };
        if !found {
            return Ok(false);
        }
        self.len -= 1;

        // Shrink the root while it is an internal node with a single child.
        loop {
            let node = self.read_node(self.root)?;
            match node {
                Node::Internal(entries) if entries.len() == 1 => {
                    let old_root = self.root;
                    self.root = entries[0].page;
                    self.pool.deallocate(old_root)?;
                    self.height -= 1;
                }
                _ => break,
            }
        }

        // Reinsert orphans at their original levels (highest levels first so
        // the tree is tall enough when child entries go back in).
        orphans.sort_by_key(|(_, level)| std::cmp::Reverse(*level));
        for (item, level) in orphans {
            // The tree may have shrunk below an orphan's level; in that case
            // its entries cascade down to re-fit (only possible for child
            // entries whose subtrees are themselves consistent — we splice
            // their data back in by walking the subtree).
            if level >= self.height {
                self.reinsert_subtree(item)?;
            } else {
                let mut reinserted = vec![true; self.height]; // no forced reinsert during delete
                let mut pending = vec![(item, level)];
                while let Some((it, lv)) = pending.pop() {
                    self.insert_from_root(it, lv, &mut reinserted, &mut pending)?;
                }
            }
        }
        Ok(true)
    }

    /// Fallback for orphaned subtrees taller than the current tree: reinsert
    /// every data point individually.
    fn reinsert_subtree(&mut self, item: InsertItem) -> Result<(), IndexError> {
        match item {
            InsertItem::Data(e) => {
                self.len -= 1; // insert() will re-add it
                self.insert(e.point.into_vec(), e.id)?;
            }
            InsertItem::Child(c) => {
                let node = self.read_node(c.page)?;
                self.pool.deallocate(c.page)?;
                match node {
                    Node::Leaf(slab) => {
                        for e in slab.into_entries() {
                            self.reinsert_subtree(InsertItem::Data(e))?;
                        }
                    }
                    Node::Internal(entries) => {
                        for e in entries {
                            self.reinsert_subtree(InsertItem::Child(e))?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn delete_at(
        &mut self,
        page: PageId,
        level: usize,
        point: &[f64],
        id: u64,
        orphans: &mut Vec<(InsertItem, usize)>,
    ) -> Result<DeleteOutcome, IndexError> {
        let mut node = self.read_node(page)?;
        match &mut node {
            Node::Leaf(slab) => {
                let Some(pos) = slab.position(point, id) else {
                    return Ok(DeleteOutcome::NotFound);
                };
                slab.remove(pos);
                self.write_node(page, &node)?;
                Ok(DeleteOutcome::Removed)
            }
            Node::Internal(entries) => {
                let mut removed_in: Option<usize> = None;
                let candidates: Vec<(usize, PageId)> = entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.mbr.contains_point(point))
                    .map(|(i, e)| (i, e.page))
                    .collect();
                for (i, child) in candidates {
                    match self.delete_at(child, level - 1, point, id, orphans)? {
                        DeleteOutcome::NotFound => continue,
                        DeleteOutcome::Removed => {
                            removed_in = Some(i);
                            break;
                        }
                    }
                }

                let Some(i) = removed_in else {
                    return Ok(DeleteOutcome::NotFound);
                };
                // delete_at read our in-memory copy before recursion; the
                // recursion only modified descendants, so `entries` is
                // still current. Refresh or condense child `i`.
                let child_page = entries[i].page;
                let child = self.read_node(child_page)?;
                let (_, child_min, _) = self.cfg.caps(child.is_leaf());
                if child.len() < child_min {
                    // Dissolve the child; orphan its entries at child level.
                    let child_level = level - 1;
                    match child {
                        Node::Leaf(slab) => {
                            for e in slab.into_entries() {
                                orphans.push((InsertItem::Data(e), child_level));
                            }
                        }
                        Node::Internal(es) => {
                            // A child entry whose subtree root sits at level
                            // `child_level − 1` is adopted by a node at
                            // `child_level` — the dissolved node's own level.
                            for e in es {
                                orphans.push((InsertItem::Child(e), child_level));
                            }
                        }
                    }
                    self.pool.deallocate(child_page)?;
                    entries.remove(i);
                } else {
                    entries[i].mbr = child.mbr().expect("non-underflowing child");
                }
                self.write_node(page, &node)?;
                Ok(DeleteOutcome::Removed)
            }
        }
    }

    // ------------------------------------------------------------------
    // Introspection / validation
    // ------------------------------------------------------------------

    /// Walks the whole tree checking every structural invariant; returns the
    /// number of data entries seen.
    ///
    /// Doubles as the CLI `scrub` verifier: every page is read (and hence
    /// checksum-verified), decoded, and checked against the R-tree shape
    /// rules.
    ///
    /// # Errors
    /// [`IndexError::CorruptNode`] describing the first violated invariant,
    /// or any storage/decoding failure met on the way. Uses counted reads
    /// (reset the stats afterwards if you care).
    pub fn check_invariants(&self) -> Result<usize, IndexError> {
        let root = self.root;
        let height = self.height;
        let count = self.check_node(root, height - 1, None)?;
        if count != self.len {
            return Err(IndexError::CorruptNode {
                page: root,
                detail: format!(
                    "len() = {} disagrees with leaf population {count}",
                    self.len
                ),
            });
        }
        Ok(count)
    }

    fn check_node(
        &self,
        page: PageId,
        level: usize,
        parent_mbr: Option<&Mbr>,
    ) -> Result<usize, IndexError> {
        let node = self.read_node(page)?;
        let is_root = page == self.root;
        let (max, min, _) = self.cfg.caps(node.is_leaf());
        let fail = |detail: String| IndexError::CorruptNode { page, detail };
        if !is_root && node.len() < min {
            return Err(fail(format!("node underflows: {} < m = {min}", node.len())));
        }
        if node.len() > max {
            return Err(fail(format!("node overflows: {} > M = {max}", node.len())));
        }
        if let (Some(pm), Some(nm)) = (parent_mbr, node.mbr().as_ref()) {
            if !pm.contains_mbr(nm) {
                return Err(fail("parent MBR does not contain node".into()));
            }
        }
        match node {
            Node::Leaf(entries) => {
                if level != 0 {
                    return Err(fail(format!("leaf found at level {level}")));
                }
                Ok(entries.len())
            }
            Node::Internal(entries) => {
                if level == 0 {
                    return Err(fail("internal node at leaf level".into()));
                }
                let mut total = 0;
                for e in entries {
                    let child = self.read_node(e.page)?;
                    let child_mbr = child.mbr().ok_or_else(|| IndexError::CorruptNode {
                        page: e.page,
                        detail: "empty non-root node".into(),
                    })?;
                    if !e.mbr.contains_mbr(&child_mbr) {
                        return Err(fail(format!(
                            "stored child MBR does not cover child {}",
                            e.page
                        )));
                    }
                    total += self.check_node(e.page, level - 1, Some(&e.mbr))?;
                }
                Ok(total)
            }
        }
    }

    /// Collects the MBR of every directory entry in the tree (all levels).
    /// Introspection facility for box-shape analyses.
    ///
    /// # Errors
    /// Any storage or decoding failure met on the walk.
    pub fn directory_mbrs(&self) -> Result<Vec<Mbr>, IndexError> {
        let mut out = Vec::new();
        let root = self.root;
        self.collect_mbrs(root, &mut out)?;
        Ok(out)
    }

    fn collect_mbrs(&self, page: PageId, out: &mut Vec<Mbr>) -> Result<(), IndexError> {
        if let Node::Internal(entries) = self.read_node(page)? {
            for e in entries {
                out.push(e.mbr.clone());
                self.collect_mbrs(e.page, out)?;
            }
        }
        Ok(())
    }

    /// Collects every `(point, id)` pair in the tree (in unspecified order).
    /// Test facility.
    ///
    /// # Errors
    /// Any storage or decoding failure met on the walk.
    pub fn dump(&self) -> Result<Vec<(Vec<f64>, u64)>, IndexError> {
        let mut out = Vec::with_capacity(self.len);
        let root = self.root;
        self.dump_node(root, &mut out)?;
        Ok(out)
    }

    fn dump_node(&self, page: PageId, out: &mut Vec<(Vec<f64>, u64)>) -> Result<(), IndexError> {
        match self.read_node(page)? {
            Node::Leaf(slab) => {
                for (id, p) in slab.rows() {
                    out.push((p.to_vec(), id));
                }
            }
            Node::Internal(entries) => {
                for e in entries {
                    self.dump_node(e.page, out)?;
                }
            }
        }
        Ok(())
    }

    /// Constructs a tree directly from pre-built levels (used by the STR
    /// bulk loader).
    pub(crate) fn from_parts(
        cfg: TreeConfig,
        pool: BufferPool,
        root: PageId,
        height: usize,
        len: usize,
    ) -> Self {
        Self {
            cfg,
            pool,
            root,
            height,
            len,
        }
    }
}

enum DeleteOutcome {
    NotFound,
    Removed,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(dim: usize, split: SplitPolicy) -> TreeConfig {
        TreeConfig::uniform(dim, 1024, 8, 3, 2, split, 0)
    }

    fn grid_points(n: usize) -> Vec<Vec<f64>> {
        // Deterministic scattered 2-d points (decorrelated via multipliers).
        (0..n)
            .map(|i| vec![((i * 37) % 101) as f64, ((i * 61) % 97) as f64])
            .collect()
    }

    #[test]
    fn empty_tree_properties() {
        let t = RTree::new(small_cfg(2, SplitPolicy::RStar)).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        assert_eq!(t.check_invariants().unwrap(), 0);
    }

    #[test]
    fn paper_config_validates() {
        TreeConfig::paper(6).validate();
    }

    #[test]
    #[should_panic(expected = "m <= M/2")]
    fn bad_min_entries_rejected() {
        let mut c = TreeConfig::paper(6);
        c.min_entries = 11;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "exceeds page fanout")]
    fn oversized_m_rejected() {
        let mut c = TreeConfig::paper(6);
        c.page_size = 512; // fanout (512-3)/100 = 5
        c.validate();
    }

    #[test]
    fn insert_and_dump_small() {
        let mut t = RTree::new(small_cfg(2, SplitPolicy::RStar)).unwrap();
        let pts = grid_points(50);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        assert_eq!(t.len(), 50);
        t.check_invariants().unwrap();
        let mut dumped = t.dump().unwrap();
        dumped.sort_by_key(|(_, id)| *id);
        for (i, (p, id)) in dumped.iter().enumerate() {
            assert_eq!(*id, i as u64);
            assert_eq!(*p, pts[i]);
        }
    }

    #[test]
    fn all_split_policies_build_valid_trees() {
        for split in [
            SplitPolicy::RStar,
            SplitPolicy::GuttmanQuadratic,
            SplitPolicy::GuttmanLinear,
        ] {
            let mut t = RTree::new(small_cfg(2, split)).unwrap();
            for (i, p) in grid_points(300).iter().enumerate() {
                t.insert(p.clone(), i as u64).unwrap();
            }
            assert_eq!(t.len(), 300, "{split:?}");
            assert!(t.height() >= 3, "{split:?} should have grown");
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn duplicate_points_are_allowed() {
        let mut t = RTree::new(small_cfg(2, SplitPolicy::RStar)).unwrap();
        for i in 0..40 {
            t.insert(vec![1.0, 2.0], i).unwrap();
        }
        assert_eq!(t.len(), 40);
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_removes_exactly_the_victim() {
        let mut t = RTree::new(small_cfg(2, SplitPolicy::RStar)).unwrap();
        let pts = grid_points(60);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        assert!(t.delete(&pts[17], 17).unwrap());
        assert!(!t.delete(&pts[17], 17).unwrap(), "double delete must fail");
        assert_eq!(t.len(), 59);
        t.check_invariants().unwrap();
        let ids: Vec<u64> = t.dump().unwrap().into_iter().map(|(_, id)| id).collect();
        assert!(!ids.contains(&17));
        assert_eq!(ids.len(), 59);
    }

    #[test]
    fn delete_distinguishes_ids_at_same_point() {
        let mut t = RTree::new(small_cfg(2, SplitPolicy::RStar)).unwrap();
        t.insert(vec![5.0, 5.0], 1).unwrap();
        t.insert(vec![5.0, 5.0], 2).unwrap();
        assert!(t.delete(&[5.0, 5.0], 2).unwrap());
        let dumped = t.dump().unwrap();
        assert_eq!(dumped.len(), 1);
        assert_eq!(dumped[0].1, 1);
    }

    #[test]
    fn delete_everything_shrinks_to_empty_root() {
        let mut t = RTree::new(small_cfg(2, SplitPolicy::RStar)).unwrap();
        let pts = grid_points(120);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        for (i, p) in pts.iter().enumerate() {
            assert!(t.delete(p, i as u64).unwrap(), "missing id {i}");
            t.check_invariants().unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn interleaved_inserts_and_deletes_stay_consistent() {
        let mut t = RTree::new(small_cfg(2, SplitPolicy::RStar)).unwrap();
        let pts = grid_points(200);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
            if i % 3 == 2 {
                // Remove the previous point again.
                assert!(t.delete(&pts[i - 1], (i - 1) as u64).unwrap());
            }
        }
        t.check_invariants().unwrap();
        let ids: std::collections::BTreeSet<u64> =
            t.dump().unwrap().into_iter().map(|(_, id)| id).collect();
        for i in 0..200u64 {
            let expect_deleted = i % 3 == 1 && i + 1 < 200;
            assert_eq!(!ids.contains(&i), expect_deleted, "id {i} presence wrong");
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = RTree::new(small_cfg(2, SplitPolicy::RStar)).unwrap();
        for (i, p) in grid_points(1000).iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        // With M = 8 and 1000 entries, height should be ~4 (8^4 = 4096).
        assert!(t.height() >= 3 && t.height() <= 6, "height {}", t.height());
        t.check_invariants().unwrap();
    }

    #[test]
    fn six_dimensional_paper_layout_works() {
        let mut cfg = TreeConfig::paper(6);
        cfg.buffer_frames = 0;
        let mut t = RTree::new(cfg).unwrap();
        for i in 0..500u64 {
            let p: Vec<f64> = (0..6).map(|j| ((i * 31 + j * 17) % 211) as f64).collect();
            t.insert(p, i).unwrap();
        }
        assert_eq!(t.len(), 500);
        t.check_invariants().unwrap();
    }

    #[test]
    fn page_accesses_are_recorded_during_inserts() {
        let mut t = RTree::new(small_cfg(2, SplitPolicy::RStar)).unwrap();
        t.stats().reset();
        t.insert(vec![1.0, 1.0], 0).unwrap();
        let s = t.stats();
        assert!(s.reads() >= 1, "insert must read the root");
        assert!(s.writes() >= 1, "insert must write the leaf");
    }

    #[test]
    fn try_validate_reports_instead_of_panicking() {
        let mut c = TreeConfig::paper(6);
        c.min_entries = 11;
        assert!(c.try_validate().unwrap_err().contains("m <= M/2"));
        c = TreeConfig::paper(6);
        c.page_size = 512;
        assert!(c
            .try_validate()
            .unwrap_err()
            .contains("exceeds page fanout"));
        c = TreeConfig::paper(6);
        c.page_size = 2; // cannot even hold the node header
        assert!(c.try_validate().unwrap_err().contains("node header"));
        assert!(TreeConfig::paper(6).try_validate().is_ok());
    }

    #[test]
    fn corrupt_page_surfaces_typed_errors_not_panics() {
        let mut t = RTree::new(small_cfg(2, SplitPolicy::RStar)).unwrap();
        for (i, p) in grid_points(80).iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        let root = t.root_page();
        t.corrupt_page(root, &mut |bytes| bytes[7] ^= 0x40).unwrap();
        let err = t.dump().unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert!(t.check_invariants().is_err());
        assert!(t.insert(vec![0.5, 0.5], 999).is_err());
    }

    #[test]
    fn decodable_but_malformed_node_is_a_corrupt_node_error() {
        let mut t = RTree::new(small_cfg(2, SplitPolicy::RStar)).unwrap();
        for (i, p) in grid_points(80).iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        let root = t.root_page();
        // An absurd entry count decodes as "exceeds page fanout" — but we
        // corrupt beneath the checksum, so the CRC catches it first; heal
        // the CRC by rewriting through the pool is not possible without the
        // plain bytes, so just assert the typed error shape.
        t.corrupt_page(root, &mut |bytes| bytes[1] = 0xFF).unwrap();
        match t.dump().unwrap_err() {
            IndexError::Storage(tsss_storage::StorageError::Corrupt { .. }) => {}
            other => panic!("expected storage corruption, got {other:?}"),
        }
    }
}
