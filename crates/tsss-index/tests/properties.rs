//! Model-based randomised tests: the R-tree (any split policy, incremental
//! or bulk-loaded) must behave exactly like a flat vector of points under
//! every query, across random interleavings of inserts and deletes.
//!
//! Deterministic pseudo-random cases (seeded [`tsss_rand::Rng`]) replace the
//! former proptest strategies so the workspace builds offline.

use std::collections::BTreeSet;
use tsss_geometry::line::{pld_sq, Line};
use tsss_geometry::penetration::PenetrationMethod;
use tsss_geometry::Mbr;
use tsss_index::bulk::bulk_load;
use tsss_index::{DataEntry, RTree, SplitPolicy, TreeConfig};
use tsss_rand::Rng;

fn cfg(split: SplitPolicy) -> TreeConfig {
    TreeConfig::uniform(3, 1024, 8, 3, 2, split, 0)
}

fn point(rng: &mut Rng) -> Vec<f64> {
    rng.f64_vec(3, -50.0, 50.0)
}

fn random_split(rng: &mut Rng) -> SplitPolicy {
    match rng.usize_below(3) {
        0 => SplitPolicy::RStar,
        1 => SplitPolicy::GuttmanQuadratic,
        _ => SplitPolicy::GuttmanLinear,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<f64>),
    DeleteExisting(usize), // index into the live set (mod len)
    DeleteMissing(Vec<f64>),
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.usize_below(8) {
        0..=4 => Op::Insert(point(rng)),
        5 | 6 => Op::DeleteExisting(rng.usize_below(1000)),
        _ => Op::DeleteMissing(point(rng)),
    }
}

#[test]
fn tree_matches_model_under_churn() {
    let mut rng = Rng::seed_from_u64(0x1DE_0001);
    for case in 0..64 {
        let split = random_split(&mut rng);
        let n_ops = 1 + rng.usize_below(119);
        let line_dir = point(&mut rng);
        let eps = rng.f64_range(0.0, 30.0);

        let mut tree = RTree::new(cfg(split)).unwrap();
        let mut model: Vec<(Vec<f64>, u64)> = Vec::new();
        let mut next_id = 0u64;

        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Insert(p) => {
                    tree.insert(p.clone(), next_id).unwrap();
                    model.push((p, next_id));
                    next_id += 1;
                }
                Op::DeleteExisting(raw) => {
                    if model.is_empty() {
                        continue;
                    }
                    let i = raw % model.len();
                    let (p, id) = model.swap_remove(i);
                    assert!(
                        tree.delete(&p, id).unwrap(),
                        "case {case}: existing entry not deleted"
                    );
                }
                Op::DeleteMissing(p) => {
                    assert!(
                        !tree.delete(&p, 999_999).unwrap(),
                        "case {case}: phantom delete succeeded"
                    );
                }
            }
        }

        assert_eq!(tree.len(), model.len());
        tree.check_invariants().unwrap();

        // Full content equality.
        let mut dumped: Vec<(Vec<f64>, u64)> = tree.dump().unwrap();
        dumped.sort_by_key(|(_, id)| *id);
        let mut want = model.clone();
        want.sort_by_key(|(_, id)| *id);
        assert_eq!(&dumped, &want);

        // Line query equality for both penetration methods.
        let line = Line::new(vec![0.0; 3], line_dir).unwrap();
        for method in [
            PenetrationMethod::EnteringExiting,
            PenetrationMethod::BoundingSpheres,
        ] {
            let got: BTreeSet<u64> = tree
                .line_query(&line, eps, method)
                .unwrap()
                .matches
                .iter()
                .map(|m| m.id)
                .collect();
            let expect: BTreeSet<u64> = model
                .iter()
                .filter(|(p, _)| pld_sq(p, &line) <= eps * eps)
                .map(|(_, id)| *id)
                .collect();
            assert_eq!(
                &got, &expect,
                "case {case}: line query diverged ({method:?})"
            );
        }
    }
}

#[test]
fn bulk_load_equals_incremental_build() {
    let mut rng = Rng::seed_from_u64(0x1DE_0002);
    for _ in 0..64 {
        let split = random_split(&mut rng);
        let n_points = rng.usize_below(150);
        let points: Vec<Vec<f64>> = (0..n_points).map(|_| point(&mut rng)).collect();
        let center = point(&mut rng);
        let radius = rng.f64_range(0.0, 60.0);

        let entries: Vec<DataEntry> = points
            .iter()
            .enumerate()
            .map(|(i, p)| DataEntry::new(p.clone(), i as u64))
            .collect();
        let bulk = bulk_load(cfg(split), entries.clone()).unwrap();
        bulk.check_invariants().unwrap();
        let mut incr = RTree::new(cfg(split)).unwrap();
        for e in &entries {
            incr.insert(e.point.to_vec(), e.id).unwrap();
        }
        let a: BTreeSet<u64> = bulk
            .radius_query(&center, radius)
            .unwrap()
            .matches
            .iter()
            .map(|m| m.id)
            .collect();
        let b: BTreeSet<u64> = incr
            .radius_query(&center, radius)
            .unwrap()
            .matches
            .iter()
            .map(|m| m.id)
            .collect();
        assert_eq!(a, b);
    }
}

#[test]
fn box_query_equals_linear_filter() {
    let mut rng = Rng::seed_from_u64(0x1DE_0003);
    for _ in 0..64 {
        let n_points = 1 + rng.usize_below(149);
        let points: Vec<Vec<f64>> = (0..n_points).map(|_| point(&mut rng)).collect();
        let low = point(&mut rng);
        let ext = rng.f64_vec(3, 0.0, 80.0);

        let mut tree = RTree::new(cfg(SplitPolicy::RStar)).unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert(p.clone(), i as u64).unwrap();
        }
        let high: Vec<f64> = low.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let qb = Mbr::new(low, high).unwrap();
        let got: BTreeSet<u64> = tree
            .box_query(&qb)
            .unwrap()
            .matches
            .iter()
            .map(|m| m.id)
            .collect();
        let want: BTreeSet<u64> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| qb.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(got, want);
    }
}

#[test]
fn nn_matches_brute_force() {
    let mut rng = Rng::seed_from_u64(0x1DE_0004);
    for _ in 0..64 {
        let n_points = 1 + rng.usize_below(119);
        let points: Vec<Vec<f64>> = (0..n_points).map(|_| point(&mut rng)).collect();
        let dir = point(&mut rng);
        let k = 1 + rng.usize_below(7);

        let mut tree = RTree::new(cfg(SplitPolicy::RStar)).unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert(p.clone(), i as u64).unwrap();
        }
        let line = Line::new(vec![0.0; 3], dir).unwrap();
        let got = tree.nearest_to_line(&line, k).unwrap();
        let mut brute: Vec<f64> = points.iter().map(|p| pld_sq(p, &line).sqrt()).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got.len(), k.min(points.len()));
        for (g, b) in got.iter().zip(&brute) {
            assert!(
                (g.distance - b).abs() < 1e-7,
                "k-NN distance {} vs brute {}",
                g.distance,
                b
            );
        }
    }
}

/// The exact line–MBR distance equals dense-sampled ground truth and is
/// admissible (never exceeds the distance to any box point).
#[test]
fn line_mbr_min_dist_is_exact() {
    use tsss_index::nn::line_mbr_min_dist;
    let mut rng = Rng::seed_from_u64(0x1DE_0005);
    for _ in 0..256 {
        let p = rng.f64_vec(3, -30.0, 30.0);
        let d = rng.f64_vec(3, -5.0, 5.0);
        let lo = rng.f64_vec(3, -30.0, 30.0);
        let ext = rng.f64_vec(3, 0.1, 20.0);
        let line = match Line::new(p, d) {
            Ok(l) => l,
            Err(_) => continue, // zero direction — vanishingly unlikely
        };
        let high: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let mbr = Mbr::new(lo, high).unwrap();
        let exact = line_mbr_min_dist(&line, &mbr);
        // Dense sample of t; the sampled minimum can only be ≥ the true one.
        let f = |t: f64| -> f64 {
            (0..3)
                .map(|i| {
                    let x = line.point[i] + t * line.dir[i];
                    let e = (mbr.low()[i] - x).max(0.0).max(x - mbr.high()[i]);
                    e * e
                })
                .sum::<f64>()
                .sqrt()
        };
        let mut sampled = f64::INFINITY;
        for k in -4000..=4000 {
            sampled = sampled.min(f(k as f64 * 0.05));
        }
        assert!(
            exact <= sampled + 1e-9,
            "bound not admissible: {exact} > {sampled}"
        );
        // And within sampling resolution of the truth (f is 1-Lipschitz-ish
        // in t scaled by ‖d‖, so a 0.05 grid pins it down to ~0.05·‖d‖).
        let lip = 0.06 * line.dir.iter().map(|v| v * v).sum::<f64>().sqrt() + 1e-6;
        assert!(
            sampled - exact <= lip,
            "gap {} exceeds sampling slack {lip}",
            sampled - exact
        );
    }
}
