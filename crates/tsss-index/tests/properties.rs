//! Model-based property tests: the R-tree (any split policy, incremental or
//! bulk-loaded) must behave exactly like a flat vector of points under every
//! query, across random interleavings of inserts and deletes.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tsss_geometry::line::{pld_sq, Line};
use tsss_geometry::penetration::PenetrationMethod;
use tsss_geometry::Mbr;
use tsss_index::bulk::bulk_load;
use tsss_index::{DataEntry, RTree, SplitPolicy, TreeConfig};

fn cfg(split: SplitPolicy) -> TreeConfig {
    TreeConfig::uniform(3, 1024, 8, 3, 2, split, 0)
}

fn point_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 3)
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<f64>),
    DeleteExisting(usize), // index into the live set (mod len)
    DeleteMissing(Vec<f64>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => point_strategy().prop_map(Op::Insert),
        2 => (0usize..1000).prop_map(Op::DeleteExisting),
        1 => point_strategy().prop_map(Op::DeleteMissing),
    ]
}

fn split_strategy() -> impl Strategy<Value = SplitPolicy> {
    prop_oneof![
        Just(SplitPolicy::RStar),
        Just(SplitPolicy::GuttmanQuadratic),
        Just(SplitPolicy::GuttmanLinear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_matches_model_under_churn(
        split in split_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..120),
        line_dir in point_strategy(),
        eps in 0.0f64..30.0,
    ) {
        let mut tree = RTree::new(cfg(split));
        let mut model: Vec<(Vec<f64>, u64)> = Vec::new();
        let mut next_id = 0u64;

        for op in ops {
            match op {
                Op::Insert(p) => {
                    tree.insert(p.clone(), next_id);
                    model.push((p, next_id));
                    next_id += 1;
                }
                Op::DeleteExisting(raw) => {
                    if model.is_empty() {
                        continue;
                    }
                    let i = raw % model.len();
                    let (p, id) = model.swap_remove(i);
                    prop_assert!(tree.delete(&p, id), "existing entry not deleted");
                }
                Op::DeleteMissing(p) => {
                    prop_assert!(!tree.delete(&p, 999_999), "phantom delete succeeded");
                }
            }
        }

        prop_assert_eq!(tree.len(), model.len());
        tree.check_invariants();

        // Full content equality.
        let mut dumped: Vec<(Vec<f64>, u64)> = tree.dump();
        dumped.sort_by_key(|(_, id)| *id);
        let mut want = model.clone();
        want.sort_by_key(|(_, id)| *id);
        prop_assert_eq!(&dumped, &want);

        // Line query equality for both penetration methods.
        let line = Line::new(vec![0.0; 3], line_dir).unwrap();
        for method in [PenetrationMethod::EnteringExiting, PenetrationMethod::BoundingSpheres] {
            let got: BTreeSet<u64> = tree
                .line_query(&line, eps, method)
                .matches
                .iter()
                .map(|m| m.id)
                .collect();
            let expect: BTreeSet<u64> = model
                .iter()
                .filter(|(p, _)| pld_sq(p, &line) <= eps * eps)
                .map(|(_, id)| *id)
                .collect();
            prop_assert_eq!(&got, &expect, "line query diverged ({:?})", method);
        }
    }

    #[test]
    fn bulk_load_equals_incremental_build(
        split in split_strategy(),
        points in prop::collection::vec(point_strategy(), 0..150),
        center in point_strategy(),
        radius in 0.0f64..60.0,
    ) {
        let entries: Vec<DataEntry> = points
            .iter()
            .enumerate()
            .map(|(i, p)| DataEntry::new(p.clone(), i as u64))
            .collect();
        let mut bulk = bulk_load(cfg(split), entries.clone());
        bulk.check_invariants();
        let mut incr = RTree::new(cfg(split));
        for e in &entries {
            incr.insert(e.point.to_vec(), e.id);
        }
        let a: BTreeSet<u64> = bulk.radius_query(&center, radius).matches.iter().map(|m| m.id).collect();
        let b: BTreeSet<u64> = incr.radius_query(&center, radius).matches.iter().map(|m| m.id).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn box_query_equals_linear_filter(
        points in prop::collection::vec(point_strategy(), 1..150),
        low in point_strategy(),
        ext in prop::collection::vec(0.0f64..80.0, 3),
    ) {
        let mut tree = RTree::new(cfg(SplitPolicy::RStar));
        for (i, p) in points.iter().enumerate() {
            tree.insert(p.clone(), i as u64);
        }
        let high: Vec<f64> = low.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let qb = Mbr::new(low, high).unwrap();
        let got: BTreeSet<u64> = tree.box_query(&qb).matches.iter().map(|m| m.id).collect();
        let want: BTreeSet<u64> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| qb.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn nn_matches_brute_force(
        points in prop::collection::vec(point_strategy(), 1..120),
        dir in point_strategy(),
        k in 1usize..8,
    ) {
        let mut tree = RTree::new(cfg(SplitPolicy::RStar));
        for (i, p) in points.iter().enumerate() {
            tree.insert(p.clone(), i as u64);
        }
        let line = Line::new(vec![0.0; 3], dir).unwrap();
        let got = tree.nearest_to_line(&line, k);
        let mut brute: Vec<f64> = points.iter().map(|p| pld_sq(p, &line).sqrt()).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got.len(), k.min(points.len()));
        for (g, b) in got.iter().zip(&brute) {
            prop_assert!((g.distance - b).abs() < 1e-7,
                "k-NN distance {} vs brute {}", g.distance, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The exact line–MBR distance equals dense-sampled ground truth and is
    /// admissible (never exceeds the distance to any box point).
    #[test]
    fn line_mbr_min_dist_is_exact(
        p in prop::collection::vec(-30.0f64..30.0, 3),
        d in prop::collection::vec(-5.0f64..5.0, 3),
        lo in prop::collection::vec(-30.0f64..30.0, 3),
        ext in prop::collection::vec(0.1f64..20.0, 3),
    ) {
        use tsss_index::nn::line_mbr_min_dist;
        let line = Line::new(p, d).unwrap();
        let high: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let mbr = Mbr::new(lo, high).unwrap();
        let exact = line_mbr_min_dist(&line, &mbr);
        // Dense sample of t; the sampled minimum can only be ≥ the true one.
        let f = |t: f64| -> f64 {
            (0..3)
                .map(|i| {
                    let x = line.point[i] + t * line.dir[i];
                    let e = (mbr.low()[i] - x).max(0.0).max(x - mbr.high()[i]);
                    e * e
                })
                .sum::<f64>()
                .sqrt()
        };
        let mut sampled = f64::INFINITY;
        for k in -4000..=4000 {
            sampled = sampled.min(f(k as f64 * 0.05));
        }
        prop_assert!(exact <= sampled + 1e-9, "bound not admissible: {exact} > {sampled}");
        // And within sampling resolution of the truth (f is 1-Lipschitz-ish
        // in t scaled by ‖d‖, so a 0.05 grid pins it down to ~0.05·‖d‖).
        let lip = 0.06 * line.dir.iter().map(|v| v * v).sum::<f64>().sqrt() + 1e-6;
        prop_assert!(sampled - exact <= lip, "gap {} exceeds sampling slack {lip}", sampled - exact);
    }
}
