//! End-to-end tests of the `tsss` command-line binary: spawn the real
//! executable and drive the generate → build → info → query → nn pipeline
//! through temporary files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // Cargo puts the binary next to the test executable's parent dir.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/ or release/
    p.push(format!("tsss{}", std::env::consts::EXE_SUFFIX));
    p
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsss-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn tsss binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn full_pipeline_generate_build_query_nn() {
    let dir = workdir("pipeline");
    let market = dir.join("market.csv").display().to_string();
    let engine = dir.join("engine.tsss").display().to_string();
    let query = dir.join("query.csv");

    let (ok, out, err) = run(&[
        "generate",
        "--companies",
        "12",
        "--days",
        "120",
        "--seed",
        "5",
        "--out",
        &market,
    ]);
    assert!(ok, "generate failed: {err}");
    assert!(out.contains("12 series"), "unexpected: {out}");

    let (ok, out, err) = run(&[
        "build", "--data", &market, "--window", "24", "--fc", "3", "--out", &engine,
    ]);
    assert!(ok, "build failed: {err}");
    assert!(out.contains("saved engine"), "unexpected: {out}");

    let (ok, out, _) = run(&["info", "--engine", &engine]);
    assert!(ok);
    assert!(out.contains("window length: 24"));
    assert!(out.contains("series:        12"));

    // Build a disguised query from the generated CSV: series HK0004,
    // offset 30, scaled ×2 shifted +5.
    let text = std::fs::read_to_string(&market).unwrap();
    let mut rows = Vec::new();
    for line in text.lines() {
        let mut parts = line.splitn(3, ',');
        let name = parts.next().unwrap();
        let idx: usize = parts.next().unwrap().parse().unwrap();
        if name == "HK0004" && (30..54).contains(&idx) {
            let v: f64 = parts.next().unwrap().parse().unwrap();
            rows.push(v * 2.0 + 5.0);
        }
    }
    assert_eq!(rows.len(), 24);
    let qtext: String = rows
        .iter()
        .enumerate()
        .map(|(i, v)| format!("Q,{i},{v:e}\n"))
        .collect();
    std::fs::write(&query, qtext).unwrap();
    let qpath = query.display().to_string();

    let (ok, out, err) = run(&[
        "query",
        "--engine",
        &engine,
        "--query",
        &qpath,
        "--epsilon",
        "0.0001",
    ]);
    assert!(ok, "query failed: {err}");
    assert!(
        out.contains("series 4 @ 30") && out.contains("a = 0.5000"),
        "source not recovered: {out}"
    );

    let (ok, out, err) = run(&["nn", "--engine", &engine, "--query", &qpath, "--k", "2"]);
    assert!(ok, "nn failed: {err}");
    assert!(out.contains("series 4 @ 30"), "nn missed the source: {out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_respects_scale_limits() {
    let dir = workdir("limits");
    let market = dir.join("m.csv").display().to_string();
    let engine = dir.join("e.tsss").display().to_string();
    run(&[
        "generate",
        "--companies",
        "5",
        "--days",
        "80",
        "--out",
        &market,
    ]);
    run(&[
        "build", "--data", &market, "--window", "16", "--out", &engine,
    ]);

    // Query = series HK0000 offset 0, scaled ×4 ⇒ recovery needs a = 0.25.
    let text = std::fs::read_to_string(&market).unwrap();
    let rows: Vec<f64> = text
        .lines()
        .filter(|l| l.starts_with("HK0000,"))
        .take(16)
        .map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap() * 4.0)
        .collect();
    let q = dir.join("q.csv");
    std::fs::write(
        &q,
        rows.iter()
            .enumerate()
            .map(|(i, v)| format!("Q,{i},{v:e}\n"))
            .collect::<String>(),
    )
    .unwrap();
    let qpath = q.display().to_string();

    let (ok, out, _) = run(&[
        "query",
        "--engine",
        &engine,
        "--query",
        &qpath,
        "--epsilon",
        "0.0001",
    ]);
    assert!(ok);
    assert!(out.contains("series 0 @ 0"), "{out}");

    // A min-scale above 0.25 must reject that recovery.
    let (ok, out, _) = run(&[
        "query",
        "--engine",
        &engine,
        "--query",
        &qpath,
        "--epsilon",
        "0.0001",
        "--min-scale",
        "0.5",
    ]);
    assert!(ok);
    assert!(!out.contains("series 0 @ 0"), "cost limit ignored: {out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scrub_passes_on_a_clean_engine_and_rejects_a_corrupted_one() {
    let dir = workdir("scrub");
    let market = dir.join("m.csv").display().to_string();
    let engine = dir.join("e.tsss").display().to_string();
    run(&[
        "generate",
        "--companies",
        "5",
        "--days",
        "80",
        "--out",
        &market,
    ]);
    run(&[
        "build", "--data", &market, "--window", "16", "--out", &engine,
    ]);

    let (ok, out, err) = run(&["scrub", "--engine", &engine]);
    assert!(ok, "clean scrub failed: {err}");
    assert!(out.contains("scrub clean"), "unexpected: {out}");

    // Flip one bit near the end of the file (inside an index page body).
    let mut bytes = std::fs::read(&engine).unwrap();
    let n = bytes.len();
    bytes[n - 100] ^= 0x40;
    std::fs::write(&engine, &bytes).unwrap();

    let (ok, out, err) = run(&["scrub", "--engine", &engine]);
    assert!(!ok, "scrub accepted a corrupted engine: {out}");
    assert!(err.contains("error:"), "no error message: {err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repair_recovers_a_corrupted_index_and_scrub_then_passes() {
    let dir = workdir("repair");
    let market = dir.join("m.csv").display().to_string();
    let engine = dir.join("e.tsss").display().to_string();
    run(&[
        "generate",
        "--companies",
        "5",
        "--days",
        "80",
        "--out",
        &market,
    ]);
    run(&[
        "build", "--data", &market, "--window", "16", "--out", &engine,
    ]);

    let (ok, _, err) = run(&["scrub", "--engine", &engine]);
    assert!(ok, "clean scrub failed: {err}");

    // `health` on the freshly built engine reports a closed breaker.
    let (ok, out, err) = run(&["health", "--engine", &engine]);
    assert!(ok, "health failed: {err}");
    assert!(out.contains("breaker:"), "unexpected: {out}");
    assert!(out.contains("closed"), "unexpected: {out}");

    // Flip one bit near the end of the file — the index stream is the last
    // section of the format, so this damages an index page, not the data.
    let mut bytes = std::fs::read(&engine).unwrap();
    let n = bytes.len();
    bytes[n - 100] ^= 0x40;
    std::fs::write(&engine, &bytes).unwrap();

    let (ok, _, _) = run(&["scrub", "--engine", &engine]);
    assert!(!ok, "scrub accepted a corrupted engine");

    // Repair rebuilds the index from the intact data stream and re-saves.
    let (ok, out, err) = run(&["repair", "--engine", &engine]);
    assert!(ok, "repair failed: {err}");
    assert!(
        out.contains("rebuilt from the data file"),
        "repair did not report a rebuild: {out}"
    );
    assert!(out.contains("saved repaired engine"), "unexpected: {out}");

    // The repaired engine scrubs clean and answers queries again.
    let (ok, out, err) = run(&["scrub", "--engine", &engine]);
    assert!(ok, "post-repair scrub failed: {err}");
    assert!(out.contains("scrub clean"), "unexpected: {out}");

    let text = std::fs::read_to_string(&market).unwrap();
    let rows: Vec<f64> = text
        .lines()
        .filter(|l| l.starts_with("HK0000,"))
        .take(16)
        .map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap())
        .collect();
    let q = dir.join("q.csv");
    std::fs::write(
        &q,
        rows.iter()
            .enumerate()
            .map(|(i, v)| format!("Q,{i},{v:e}\n"))
            .collect::<String>(),
    )
    .unwrap();
    let qpath = q.display().to_string();
    let (ok, out, err) = run(&[
        "query",
        "--engine",
        &engine,
        "--query",
        &qpath,
        "--epsilon",
        "0.0001",
    ]);
    assert!(ok, "post-repair query failed: {err}");
    assert!(out.contains("series 0 @ 0"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_flags_are_validated_before_the_engine_is_opened() {
    // A malformed flag value fails fast with a parse error naming the
    // flag — before `serve` tries to take ownership of the engine file
    // (the path here does not even exist).
    for flag in ["keep-alive-requests", "shards", "workers", "queue"] {
        let (ok, _, err) = run(&[
            "serve",
            "--engine",
            "/nonexistent/e.tsss",
            &format!("--{flag}"),
            "notanumber",
        ]);
        assert!(!ok, "--{flag} notanumber should fail");
        assert!(
            err.contains(&format!("--{flag}")) && err.contains("cannot parse"),
            "--{flag} error does not name the flag: {err}"
        );
    }
    // With well-formed flags the config parses and the failure moves on to
    // the (missing) engine file — proving the flags were accepted.
    let (ok, _, err) = run(&[
        "serve",
        "--engine",
        "/nonexistent/e.tsss",
        "--keep-alive-requests",
        "8",
        "--shards",
        "4",
    ]);
    assert!(!ok);
    assert!(
        err.contains("loading /nonexistent/e.tsss"),
        "flags rejected before the engine open: {err}"
    );
}

#[test]
fn malformed_invocations_fail_cleanly() {
    for args in [
        vec!["unknown-subcommand"],
        vec!["build"], // missing required options
        vec![
            "query",
            "--engine",
            "/nonexistent",
            "--query",
            "/x",
            "--epsilon",
            "1",
        ],
        vec![
            "generate",
            "--companies",
            "NaN",
            "--days",
            "5",
            "--out",
            "/tmp/x.csv",
        ],
    ] {
        let (ok, _, err) = run(&args);
        assert!(!ok, "{args:?} should fail");
        assert!(
            err.contains("error:"),
            "{args:?} gave no error message: {err}"
        );
    }
}
