//! Cross-crate integration tests: the full pipeline (market data → engine →
//! queries) exercised through the public facade, validated against the
//! sequential-scan oracle.

// Test fixture: counters are tiny, narrowing casts cannot truncate.
#![allow(clippy::cast_possible_truncation)]

use tsss::core::{CostLimit, EngineConfig, SearchEngine, SearchOptions};
use tsss::data::{MarketConfig, MarketSimulator, QueryWorkload, Series, WorkloadConfig};
use tsss::geometry::penetration::PenetrationMethod;
use tsss::geometry::scale_shift::min_scale_shift_distance;

const WINDOW: usize = 32;

fn market() -> Vec<Series> {
    MarketSimulator::new(MarketConfig::small(15, 160, 20260706)).generate()
}

fn engine(data: &[Series]) -> SearchEngine {
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(3);
    SearchEngine::build(data, cfg).unwrap()
}

#[test]
fn recall_is_exactly_one_for_every_epsilon_and_method() {
    // The paper's headline guarantee: the indexed search never misses a
    // match the sequential scan finds (Theorems 1–3 + DFT contraction), and
    // never reports anything extra after verification.
    let data = market();
    let e = engine(&data);
    let queries = QueryWorkload::generate(
        &data,
        WorkloadConfig {
            queries: 6,
            window_len: WINDOW,
            noise_level: 0.05,
            seed: 31,
            ..Default::default()
        },
    );
    for q in &queries.queries {
        for eps in [0.0, 0.5, 2.0, 10.0, 50.0] {
            let oracle = e
                .sequential_search(&q.values, eps, CostLimit::UNLIMITED)
                .unwrap();
            for method in [
                PenetrationMethod::EnteringExiting,
                PenetrationMethod::BoundingSpheres,
            ] {
                let got = e
                    .search(
                        &q.values,
                        eps,
                        SearchOptions {
                            method,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                assert_eq!(got.id_set(), oracle.id_set(), "eps {eps}, {method:?}");
            }
        }
    }
}

#[test]
fn workload_queries_recover_their_disguised_sources() {
    let data = market();
    let e = engine(&data);
    let queries = QueryWorkload::generate(
        &data,
        WorkloadConfig {
            queries: 20,
            window_len: WINDOW,
            noise_level: 0.0,
            scale_range: 4.0,
            shift_range: 50.0,
            seed: 77,
        },
    );
    for q in &queries.queries {
        let res = e.search(&q.values, 1e-5, SearchOptions::default()).unwrap();
        let hit = res
            .matches
            .iter()
            .find(|m| {
                m.id.series as usize == q.source_series && m.id.offset as usize == q.source_offset
            })
            .unwrap_or_else(|| panic!("source {}@{} lost", q.source_series, q.source_offset));
        // The recovered transform must invert the disguise.
        let inv = q.applied.inverse().expect("disguises are invertible");
        assert!((hit.transform.a - inv.a).abs() < 1e-6 * (1.0 + inv.a.abs()));
        assert!((hit.transform.b - inv.b).abs() < 1e-4 * (1.0 + inv.b.abs()));
    }
}

#[test]
fn index_pruning_skips_most_of_the_database_at_small_epsilon() {
    // At this toy scale the raw data fits in a handful of pages, so the
    // paper's page-count comparison (Figure 5) is only meaningful in the
    // full-scale bench harness. The scale-robust form of the claim is the
    // *pruning* itself: at small ε the traversal distance-checks only a
    // small fraction of the windows, instead of all of them like the scan.
    // Fat leaves (73 entries at dim 6) need enough windows for the
    // fraction to be meaningful.
    let data = MarketSimulator::new(MarketConfig::small(60, 300, 4)).generate();
    let e = engine(&data);
    let q = data[5].window(60, WINDOW).unwrap().to_vec();
    let tree = e.search(&q, 0.0, SearchOptions::default()).unwrap();
    let seq = e.sequential_search(&q, 0.0, CostLimit::UNLIMITED).unwrap();
    assert_eq!(seq.stats.candidates as usize, e.num_windows());
    // In 6-d feature space a line through the origin still grazes a fair
    // share of the (few, coarse) leaves at this scale; the fraction drops
    // further as the index grows (see the full-scale bench).
    assert!(
        (tree.stats.index.candidates_checked as usize) * 3 < e.num_windows(),
        "index checked {} of {} windows",
        tree.stats.index.candidates_checked,
        e.num_windows()
    );
}

#[test]
fn transformation_cost_limits_are_honoured_end_to_end() {
    let data = market();
    let e = engine(&data);
    let q = data[2].window(10, WINDOW).unwrap().to_vec();
    let opts = SearchOptions {
        cost: CostLimit {
            a_range: Some((0.8, 1.25)),
            b_range: Some((-5.0, 5.0)),
        },
        ..Default::default()
    };
    let res = e.search(&q, 20.0, opts).unwrap();
    for m in &res.matches {
        assert!(m.transform.a >= 0.8 && m.transform.a <= 1.25);
        assert!(m.transform.b.abs() <= 5.0);
    }
    // And the same limits produce the same set on the scan.
    let seq = e.sequential_search(&q, 20.0, opts.cost).unwrap();
    assert_eq!(res.id_set(), seq.id_set());
}

#[test]
fn dynamic_growth_keeps_the_index_consistent() {
    // Simulate the paper's "data collected regularly": grow several series
    // day by day, checking that every new window is immediately searchable
    // and invariants hold.
    let mut data = market();
    let split_day = 100;
    let tails: Vec<Vec<f64>> = data
        .iter_mut()
        .map(|s| s.values.split_off(split_day))
        .collect();
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(3);
    let mut e = SearchEngine::build(&data, cfg).unwrap();
    let base_windows = e.num_windows();

    // Feed ten days at a time.
    for chunk_start in (0..60).step_by(10) {
        for (si, tail) in tails.iter().enumerate() {
            e.append_values(si, &tail[chunk_start..chunk_start + 10])
                .unwrap();
        }
    }
    e.tree_mut().check_invariants().unwrap();
    assert_eq!(
        e.num_windows(),
        base_windows + data.len() * 60,
        "each appended day completes exactly one window per series"
    );

    // A window spanning the original boundary is searchable.
    let full_series: Vec<f64> = data[0]
        .values
        .iter()
        .chain(&tails[0][..60])
        .copied()
        .collect();
    let q = full_series[split_day - WINDOW / 2..split_day + WINDOW / 2].to_vec();
    let res = e.search(&q, 1e-6, SearchOptions::default()).unwrap();
    assert!(res
        .matches
        .iter()
        .any(|m| m.id.series == 0 && m.id.offset as usize == split_day - WINDOW / 2));
}

#[test]
fn nearest_neighbour_agrees_with_the_distance_oracle() {
    let data = market();
    let e = engine(&data);
    let q: Vec<f64> = data[9]
        .window(70, WINDOW)
        .unwrap()
        .iter()
        .map(|v| v * 0.1 + 100.0)
        .collect();
    let got = e.nearest(&q, 5).unwrap();
    // Oracle.
    let mut all: Vec<f64> = Vec::new();
    for s in &data {
        for off in 0..=s.len() - WINDOW {
            all.push(min_scale_shift_distance(&q, s.window(off, WINDOW).unwrap()).unwrap());
        }
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (g, want) in got.iter().zip(&all) {
        assert!((g.distance - want).abs() < 1e-7);
    }
    assert!(
        got[0].distance < 1e-6,
        "the (rescaled) source is distance 0"
    );
}

#[test]
fn long_queries_match_their_oracle_via_facade() {
    let data = market();
    let e = engine(&data);
    let q = data[7].window(20, 80).unwrap().to_vec();
    let fast = e.search_long(&q, 3.0, SearchOptions::default()).unwrap();
    let brute = e.sequential_search_long(&q, 3.0).unwrap();
    assert_eq!(fast.id_set(), brute.id_set());
}

#[test]
fn csv_roundtrip_feeds_an_identical_engine() {
    let data = market();
    let text = tsss::data::csv::to_csv(&data);
    let reloaded = tsss::data::csv::from_csv(&text).unwrap();
    let a = engine(&data);
    let b = engine(&reloaded);
    let q = data[1].window(33, WINDOW).unwrap().to_vec();
    let ra = a.search(&q, 4.0, SearchOptions::default()).unwrap();
    let rb = b.search(&q, 4.0, SearchOptions::default()).unwrap();
    assert_eq!(ra.id_set(), rb.id_set());
}
