//! Scaled-down checks of the paper's §7 experimental claims. The full-scale
//! reproduction lives in `tsss-bench` (release builds); these tests pin the
//! *direction* of every claim at a size debug builds handle quickly.

use tsss::core::{CostLimit, EngineConfig, SearchEngine, SearchOptions};
use tsss::data::{MarketConfig, MarketSimulator, QueryWorkload, Series, WorkloadConfig};
use tsss::geometry::penetration::PenetrationMethod;

const WINDOW: usize = 32;

fn market() -> Vec<Series> {
    MarketSimulator::new(MarketConfig::small(25, 180, 555)).generate()
}

fn engine(data: &[Series]) -> SearchEngine {
    let mut cfg = EngineConfig::small(WINDOW);
    cfg.fc = Some(3);
    SearchEngine::build(data, cfg).unwrap()
}

fn workload(data: &[Series], n: usize) -> Vec<Vec<f64>> {
    QueryWorkload::generate(
        data,
        WorkloadConfig {
            queries: n,
            window_len: WINDOW,
            noise_level: 0.05,
            seed: 4242,
            ..Default::default()
        },
    )
    .queries
    .into_iter()
    .map(|q| q.values)
    .collect()
}

/// Claim (Fig. 5): the sequential scan reads the whole data file on every
/// query — a constant `⌈values·8/page⌉` pages, independent of ε.
#[test]
fn sequential_scan_page_cost_is_the_file_size() {
    let data = market();
    let e = engine(&data);
    let total_values: usize = data.iter().map(|s| s.len()).sum();
    let expect = total_values.div_ceil(e.config().page_size / 8) as u64;
    let q = &workload(&data, 1)[0];
    for eps in [0.0, 5.0, 100.0] {
        let res = e.sequential_search(q, eps, CostLimit::UNLIMITED).unwrap();
        assert_eq!(res.stats.data_pages, expect, "eps {eps}");
    }
}

/// Claim (Fig. 5): at ε = 0 the tree search does orders of magnitude less
/// work than the scan. The page-count version of this claim needs the full
/// 650 000-value data set (where the data file dwarfs the per-query node
/// visits — see `tsss-bench`); its scale-robust core is that the traversal
/// distance-checks only a small fraction of the windows the scan must.
#[test]
fn exact_search_is_far_cheaper_than_the_scan() {
    let data = market();
    let e = engine(&data);
    let queries = workload(&data, 10);
    let mut tree_checked = 0u64;
    let mut seq_checked = 0u64;
    for q in &queries {
        tree_checked += e
            .search(q, 0.0, SearchOptions::default())
            .unwrap()
            .stats
            .index
            .candidates_checked;
        seq_checked += e
            .sequential_search(q, 0.0, CostLimit::UNLIMITED)
            .unwrap()
            .stats
            .candidates;
    }
    // At this toy scale (≈ 3700 windows, ~50 fat leaves) the line query
    // still crosses a third of the leaves; the gap widens by orders of
    // magnitude at the paper's 523 000-window scale (see `tsss-bench`).
    assert!(
        tree_checked * 2 <= seq_checked,
        "tree checked {tree_checked} windows vs scan {seq_checked}"
    );
}

/// Claim (Fig. 4/5): tree-search cost *grows* with ε (more subtrees
/// qualify), while the scan's stays flat.
#[test]
fn tree_cost_grows_with_epsilon() {
    let data = market();
    let e = engine(&data);
    let queries = workload(&data, 8);
    let cost_at = |e: &SearchEngine, eps: f64| -> u64 {
        queries
            .iter()
            .map(|q| {
                e.search(q, eps, SearchOptions::default())
                    .unwrap()
                    .stats
                    .total_pages()
            })
            .sum()
    };
    let lo = cost_at(&e, 0.0);
    let mid = cost_at(&e, 5.0);
    let hi = cost_at(&e, 40.0);
    assert!(lo <= mid && mid <= hi, "not monotone: {lo}, {mid}, {hi}");
    assert!(hi > lo, "epsilon had no effect at all");
}

/// Claim (§7): with R*-tree boxes (long diagonal, small volume) the
/// bounding-sphere pre-tests mostly fail to decide, so set 3 does extra
/// work for nothing.
#[test]
fn sphere_heuristic_mostly_falls_through_to_the_slab_test() {
    let data = market();
    let e = engine(&data);
    let queries = workload(&data, 8);
    let mut total = 0u64;
    let mut fallback = 0u64;
    for q in &queries {
        let res = e
            .search(
                q,
                10.0,
                SearchOptions {
                    method: PenetrationMethod::BoundingSpheres,
                    ..Default::default()
                },
            )
            .unwrap();
        total += res.stats.index.sphere.total();
        fallback += res.stats.index.sphere.fallback;
    }
    assert!(total > 0);
    let rate = fallback as f64 / total as f64;
    assert!(
        rate > 0.3,
        "spheres decided more than expected (fallback rate {rate:.2})"
    );
}

/// Claim (§7): both methods return identical answers — the sphere heuristic
/// only changes the work, never the result.
#[test]
fn sets_two_and_three_return_identical_answers() {
    let data = market();
    let e = engine(&data);
    for q in &workload(&data, 6) {
        for eps in [0.0, 3.0, 25.0] {
            let a = e.search(q, eps, SearchOptions::default()).unwrap().id_set();
            let b = e
                .search(
                    q,
                    eps,
                    SearchOptions {
                        method: PenetrationMethod::BoundingSpheres,
                        ..Default::default()
                    },
                )
                .unwrap()
                .id_set();
            assert_eq!(a, b, "eps {eps}");
        }
    }
}

/// Claim (§7, dimension reduction): 3 Fourier coefficients suffice — the
/// index with f_c = 3 produces few enough false alarms that verification
/// stays cheap relative to scanning, and larger f_c shrinks false alarms
/// further.
#[test]
fn more_coefficients_mean_fewer_false_alarms() {
    let data = market();
    let queries = workload(&data, 6);
    let mut false_alarms = Vec::new();
    for fc in [1usize, 3, 5] {
        let mut cfg = EngineConfig::small(WINDOW);
        cfg.fc = Some(fc);
        let e = SearchEngine::build(&data, cfg).unwrap();
        let fa: u64 = queries
            .iter()
            .map(|q| {
                e.search(q, 5.0, SearchOptions::default())
                    .unwrap()
                    .stats
                    .false_alarms
            })
            .sum();
        false_alarms.push(fa);
    }
    assert!(
        false_alarms[0] >= false_alarms[1] && false_alarms[1] >= false_alarms[2],
        "false alarms should fall with fc: {false_alarms:?}"
    );
}

/// Claim (§3, requirement 3): no brute-force over (a, b) — the engine
/// reports the *optimal* transformation analytically. We cross-check the
/// reported (a, b) against a dense grid search.
#[test]
fn reported_transforms_beat_grid_search() {
    let data = market();
    let e = engine(&data);
    let q = data[3].window(50, WINDOW).unwrap().to_vec();
    let res = e.search(&q, 15.0, SearchOptions::default()).unwrap();
    assert!(!res.matches.is_empty());
    for m in res.matches.iter().take(5) {
        let raw = data[m.id.series as usize]
            .window(m.id.offset as usize, WINDOW)
            .unwrap();
        for ai in -20..=20 {
            for bi in -20..=20 {
                let a = m.transform.a + ai as f64 * 0.05;
                let b = m.transform.b + bi as f64 * 0.5;
                let d: f64 = q
                    .iter()
                    .zip(raw)
                    .map(|(x, y)| (a * x + b - y) * (a * x + b - y))
                    .sum::<f64>()
                    .sqrt();
                assert!(
                    d + 1e-9 >= m.distance,
                    "grid ({a}, {b}) beat the analytic optimum"
                );
            }
        }
    }
}
