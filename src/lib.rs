//! # tsss — Fast Time-Series Searching with Scaling and Shifting
//!
//! A from-scratch Rust reproduction of Chu & Wong's PODS '99 paper: a
//! similarity search engine for time series under scale-shift
//! transformations `F_{a,b}(u) = a·u + b·N`, indexed with a page-based
//! R*-tree over SE-transformed, DFT-reduced sliding windows.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`geometry`] — vectors, lines, `PLD`/`LLD`, the SE-transformation,
//!   MBRs, penetration tests (paper §4–§5),
//! * [`storage`] — 4 KB pages, simulated disk, LRU buffer pool, exact
//!   page-access accounting (the Figure 5 metric),
//! * [`index`] — R-tree / R*-tree with line-penetration search (paper §6),
//! * [`dft`] — FFT and the `f_c`-coefficient feature extractor (paper §7),
//! * [`core`] — the end-to-end engine: build, search, sequential baseline,
//!   k-NN, long queries,
//! * [`data`] — synthetic stock-market data and query workloads,
//! * [`server`] — a dependency-free HTTP/1.1 front door: JSON endpoints
//!   with bounded-queue admission control and per-request QoS (deadlines,
//!   page budgets, degradation policy).
//!
//! ## Quickstart
//!
//! ```
//! use tsss::core::{EngineConfig, SearchEngine, SearchOptions};
//! use tsss::data::{MarketConfig, MarketSimulator};
//!
//! // 20 synthetic stocks, 100 observations each.
//! let market = MarketSimulator::new(MarketConfig::small(20, 100, 7)).generate();
//! let engine = SearchEngine::build(&market, EngineConfig::small(16)).unwrap();
//!
//! // Disguise a real window with a scale and a shift…
//! let secret = tsss::geometry::scale_shift::ScaleShift { a: 2.0, b: -30.0 };
//! let query = secret.apply(market[3].window(40, 16).unwrap());
//!
//! // …and the engine recovers it, reporting the transformation.
//! let hits = engine.search(&query, 1e-6, SearchOptions::default()).unwrap();
//! let best = &hits.matches[0];
//! assert_eq!((best.id.series, best.id.offset), (3, 40));
//! assert!((best.transform.a - 0.5).abs() < 1e-6); // the inverse disguise
//! ```

#![forbid(unsafe_code)]
// Tests assert bit-exact determinism and build small fixtures, where exact
// float comparison and narrowing literals are the point, not a hazard.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]

pub use tsss_core as core;
pub use tsss_data as data;
pub use tsss_dft as dft;
pub use tsss_geometry as geometry;
pub use tsss_index as index;
pub use tsss_server as server;
pub use tsss_storage as storage;
