//! `tsss` — command-line front end for the scale-shift time-series search
//! engine.
//!
//! ```text
//! tsss generate --companies 100 --days 650 --seed 7 --out market.csv
//! tsss build    --data market.csv --window 128 --fc 3 --out engine.tsss
//! tsss info     --engine engine.tsss
//! tsss query    --engine engine.tsss --query q.csv --epsilon 0.5 [--min-scale A] [--max-scale B] [--limit N]
//! tsss batch    --engine engine.tsss --queries qs.csv --epsilon 0.5 [--workers N]
//! tsss nn       --engine engine.tsss --query q.csv --k 10
//! tsss scrub    --engine engine.tsss
//! tsss repair   --engine engine.tsss
//! tsss health   --engine engine.tsss
//! tsss serve    --engine engine.tsss [--addr 127.0.0.1:7878] [--workers N] [--queue N] [--keep-alive-requests N] [--shards N]
//! tsss demo
//! ```
//!
//! Queries are CSV files in the same long format as `generate`'s output
//! (`name,index,value`); `query`/`nn` use the first series in the file,
//! `batch` runs every series as one query each, in parallel.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tsss::core::{CostLimit, DurableEngine, EngineConfig, SearchEngine, SearchOptions};
use tsss::data::csv;
use tsss::data::{MarketConfig, MarketSimulator};

mod args {
    //! Tiny `--key value` argument parser (no external dependencies).

    use std::collections::BTreeMap;

    /// Parsed command line: a subcommand plus `--key value` options.
    pub struct Args {
        pub command: String,
        options: BTreeMap<String, String>,
    }

    impl Args {
        /// Parses `argv[1..]`.
        ///
        /// # Errors
        /// Returns a message on a missing subcommand, a dangling `--key`, or
        /// a positional argument where an option was expected.
        pub fn parse(argv: &[String]) -> Result<Args, String> {
            let mut it = argv.iter();
            let command = it
                .next()
                .ok_or_else(|| "missing subcommand".to_string())?
                .clone();
            let mut options = BTreeMap::new();
            while let Some(key) = it.next() {
                let Some(name) = key.strip_prefix("--") else {
                    return Err(format!("expected --option, found {key:?}"));
                };
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{name} needs a value"))?;
                if options.insert(name.to_string(), value.clone()).is_some() {
                    return Err(format!("option --{name} given twice"));
                }
            }
            Ok(Args { command, options })
        }

        pub fn get(&self, name: &str) -> Option<&str> {
            self.options.get(name).map(String::as_str)
        }

        pub fn require(&self, name: &str) -> Result<&str, String> {
            self.get(name)
                .ok_or_else(|| format!("missing required option --{name}"))
        }

        pub fn get_parsed<T: std::str::FromStr>(
            &self,
            name: &str,
            default: T,
        ) -> Result<T, String> {
            match self.get(name) {
                None => Ok(default),
                Some(raw) => raw
                    .parse()
                    .map_err(|_| format!("option --{name}: cannot parse {raw:?}")),
            }
        }

        pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
            let raw = self.require(name)?;
            raw.parse()
                .map_err(|_| format!("option --{name}: cannot parse {raw:?}"))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn argv(s: &str) -> Vec<String> {
            s.split_whitespace().map(String::from).collect()
        }

        #[test]
        fn parses_subcommand_and_options() {
            let a = Args::parse(&argv("build --window 128 --out x.tsss")).unwrap();
            assert_eq!(a.command, "build");
            assert_eq!(a.get("window"), Some("128"));
            assert_eq!(a.require("out").unwrap(), "x.tsss");
            assert_eq!(a.get_parsed("window", 0usize).unwrap(), 128);
            assert_eq!(a.get_parsed("missing", 7usize).unwrap(), 7);
        }

        #[test]
        fn rejects_malformed_input() {
            assert!(Args::parse(&[]).is_err());
            assert!(Args::parse(&argv("q stray")).is_err());
            assert!(Args::parse(&argv("q --dangling")).is_err());
            assert!(Args::parse(&argv("q --x 1 --x 2")).is_err());
            let a = Args::parse(&argv("q --n notanumber")).unwrap();
            assert!(a.get_parsed::<usize>("n", 0).is_err());
            assert!(a.require("absent").is_err());
        }
    }
}

use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let result = match parsed.command.as_str() {
        "generate" => cmd_generate(&parsed),
        "build" => cmd_build(&parsed),
        "info" => cmd_info(&parsed),
        "query" => cmd_query(&parsed),
        "batch" => cmd_batch(&parsed),
        "nn" => cmd_nn(&parsed),
        "scrub" => cmd_scrub(&parsed),
        "repair" => cmd_repair(&parsed),
        "health" => cmd_health(&parsed),
        "serve" => cmd_serve(&parsed),
        "demo" => cmd_demo(),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "tsss — time-series search with scaling and shifting (PODS '99)\n\n\
         subcommands:\n  \
         generate --companies N --days D [--seed S] --out FILE.csv\n  \
         build    --data FILE.csv [--window N] [--fc K] --out ENGINE.tsss\n  \
         info     --engine ENGINE.tsss\n  \
         query    --engine ENGINE.tsss --query Q.csv --epsilon E\n           \
         [--min-scale A] [--max-scale B] [--limit N]\n  \
         batch    --engine ENGINE.tsss --queries QS.csv --epsilon E [--workers N]\n  \
         nn       --engine ENGINE.tsss --query Q.csv [--k K]\n  \
         scrub    --engine ENGINE.tsss\n  \
         repair   --engine ENGINE.tsss\n  \
         health   --engine ENGINE.tsss\n  \
         serve    --engine ENGINE.tsss [--addr HOST:PORT] [--workers N] [--queue N]\n           \
         [--keep-alive-requests N] [--shards N]\n  \
         demo"
    );
}

fn load_query(path: &str, window: usize) -> Result<Vec<f64>, String> {
    let series = csv::load(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    let first = series
        .first()
        .ok_or_else(|| format!("{path} holds no series"))?;
    if first.len() < window {
        return Err(format!(
            "query series {:?} has {} values; the engine window is {window}",
            first.name,
            first.len()
        ));
    }
    Ok(first.values[..window].to_vec())
}

fn cmd_generate(a: &Args) -> Result<(), String> {
    let companies: usize = a.require_parsed("companies")?;
    let days: usize = a.require_parsed("days")?;
    let seed: u64 = a.get_parsed("seed", 0x7555_1999)?;
    let out = PathBuf::from(a.require("out")?);
    let market = MarketSimulator::new(MarketConfig {
        companies,
        days,
        seed,
        ..MarketConfig::paper()
    })
    .generate();
    csv::save(&market, &out).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote {} series × {} values to {}",
        companies,
        days,
        out.display()
    );
    Ok(())
}

fn cmd_build(a: &Args) -> Result<(), String> {
    let data_path = a.require("data")?;
    let out = PathBuf::from(a.require("out")?);
    let window: usize = a.get_parsed("window", 128)?;
    let fc: usize = a.get_parsed("fc", 3)?;
    let series =
        csv::load(Path::new(data_path)).map_err(|e| format!("reading {data_path}: {e}"))?;
    let mut cfg = EngineConfig::paper();
    cfg.window_len = window;
    cfg.fc = Some(fc);
    let t0 = std::time::Instant::now();
    let engine = SearchEngine::build(&series, cfg).expect("data set fits the u32 window ids");
    println!(
        "indexed {} windows from {} series in {:.2?} (tree height {})",
        engine.num_windows(),
        engine.num_series(),
        t0.elapsed(),
        engine.index_height()
    );
    engine
        .save_to_path(&out)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("saved engine to {}", out.display());
    Ok(())
}

fn cmd_info(a: &Args) -> Result<(), String> {
    let path = a.require("engine")?;
    let engine = SearchEngine::load_from_path(Path::new(path))
        .map_err(|e| format!("loading {path}: {e}"))?;
    let cfg = engine.config();
    println!("engine: {path}");
    println!("  series:        {}", engine.num_series());
    println!("  windows:       {}", engine.num_windows());
    println!("  window length: {}", cfg.window_len);
    println!(
        "  features:      {} ({} DFT coefficients)",
        cfg.feature_dim(),
        cfg.fc.map(|f| f.to_string()).unwrap_or_else(|| "no".into())
    );
    println!("  index height:  {}", engine.index_height());
    println!("  data pages:    {}", engine.data_page_count());
    Ok(())
}

fn cmd_query(a: &Args) -> Result<(), String> {
    let path = a.require("engine")?;
    let engine = SearchEngine::load_from_path(Path::new(path))
        .map_err(|e| format!("loading {path}: {e}"))?;
    let query = load_query(a.require("query")?, engine.config().window_len)?;
    let epsilon: f64 = a.require_parsed("epsilon")?;
    let limit: usize = a.get_parsed("limit", 20)?;
    let min_scale: f64 = a.get_parsed("min-scale", f64::NEG_INFINITY)?;
    let max_scale: f64 = a.get_parsed("max-scale", f64::INFINITY)?;
    let opts = SearchOptions {
        cost: CostLimit {
            a_range: Some((min_scale, max_scale)),
            b_range: None,
        },
        ..Default::default()
    };
    let res = engine
        .search(&query, epsilon, opts)
        .map_err(|e| e.to_string())?;
    println!(
        "{} match(es); {} candidates ({} verified, {} false alarms, {} cost-rejected), {} pages, {:?}",
        res.matches.len(),
        res.stats.candidates,
        res.stats.verified,
        res.stats.false_alarms,
        res.stats.cost_rejected,
        res.stats.total_pages(),
        res.stats.elapsed
    );
    if res.stats.degraded {
        println!(
            "  warning: index corruption detected, answered by sequential scan ({})",
            res.stats
                .degraded_reason
                .as_deref()
                .unwrap_or("unknown cause")
        );
    }
    for m in res.matches.iter().take(limit) {
        println!(
            "  {} · a = {:.4}, b = {:+.4} · distance {:.6}",
            m.id, m.transform.a, m.transform.b, m.distance
        );
    }
    if res.matches.len() > limit {
        println!("  … and {} more (raise --limit)", res.matches.len() - limit);
    }
    Ok(())
}

fn cmd_batch(a: &Args) -> Result<(), String> {
    let path = a.require("engine")?;
    let engine = SearchEngine::load_from_path(Path::new(path))
        .map_err(|e| format!("loading {path}: {e}"))?;
    let window = engine.config().window_len;
    let queries_path = a.require("queries")?;
    let series =
        csv::load(Path::new(queries_path)).map_err(|e| format!("reading {queries_path}: {e}"))?;
    if series.is_empty() {
        return Err(format!("{queries_path} holds no series"));
    }
    let mut names = Vec::with_capacity(series.len());
    let mut queries = Vec::with_capacity(series.len());
    for s in &series {
        if s.len() < window {
            return Err(format!(
                "query series {:?} has {} values; the engine window is {window}",
                s.name,
                s.len()
            ));
        }
        names.push(s.name.clone());
        queries.push(s.values[..window].to_vec());
    }
    let epsilon: f64 = a.require_parsed("epsilon")?;
    let workers: usize = a.get_parsed(
        "workers",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )?;
    let t0 = std::time::Instant::now();
    let results = engine
        .search_batch(&queries, epsilon, SearchOptions::default(), workers)
        .map_err(|e| e.to_string())?;
    let wall = t0.elapsed();
    let mut total_matches = 0usize;
    let mut total_pages = 0u64;
    for (name, res) in names.iter().zip(&results) {
        total_matches += res.matches.len();
        total_pages += res.stats.total_pages();
        println!(
            "{name}: {} match(es), {} candidates, {} pages",
            res.matches.len(),
            res.stats.candidates,
            res.stats.total_pages()
        );
    }
    println!(
        "\n{} queries on {} worker(s) in {wall:.2?}: {total_matches} match(es), {total_pages} pages",
        results.len(),
        workers.max(1).min(queries.len())
    );
    Ok(())
}

fn cmd_nn(a: &Args) -> Result<(), String> {
    let path = a.require("engine")?;
    let engine = SearchEngine::load_from_path(Path::new(path))
        .map_err(|e| format!("loading {path}: {e}"))?;
    let query = load_query(a.require("query")?, engine.config().window_len)?;
    let k: usize = a.get_parsed("k", 10)?;
    let res = engine
        .nearest_search(&query, k, CostLimit::UNLIMITED)
        .map_err(|e| e.to_string())?;
    println!(
        "{} nearest subsequence(s); {} frontier candidates ({} verified), {} pages, {:?}:",
        res.matches.len(),
        res.stats.candidates,
        res.stats.verified,
        res.stats.total_pages(),
        res.stats.elapsed
    );
    for m in &res.matches {
        println!(
            "  {} · a = {:.4}, b = {:+.4} · distance {:.6}",
            m.id, m.transform.a, m.transform.b, m.distance
        );
    }
    Ok(())
}

fn cmd_scrub(a: &Args) -> Result<(), String> {
    let path = a.require("engine")?;
    let mut engine = SearchEngine::load_from_path(Path::new(path))
        .map_err(|e| format!("loading {path}: {e}"))?;
    println!("scrubbing {path} …");
    let nodes = engine
        .tree_mut()
        .check_invariants()
        .map_err(|e| format!("index scrub failed: {e}"))?;
    println!(
        "  index: {nodes} node(s) over {} page(s), all checksums and invariants OK",
        engine.index_extent()
    );
    let all = engine
        .read_everything()
        .map_err(|e| format!("data scrub failed: {e}"))?;
    let values: usize = all.iter().map(Vec::len).sum();
    println!(
        "  data:  {} series, {values} values over {} page(s), all checksums OK",
        all.len(),
        engine.data_page_count()
    );
    println!("scrub clean: every page verified");
    Ok(())
}

fn cmd_repair(a: &Args) -> Result<(), String> {
    let path = a.require("engine")?;
    // A damaged index stream is tolerated here: the data stream (which is
    // still fully checksummed) is the source of truth and the index is
    // rebuilt from it on load.
    let (mut engine, rebuilt) = SearchEngine::load_repairing_from_path(Path::new(path))
        .map_err(|e| format!("loading {path}: {e}"))?;
    if rebuilt {
        println!("index stream of {path} was damaged; rebuilt from the data file");
    } else {
        let report = engine.repair().map_err(|e| format!("repairing: {e}"))?;
        println!("index stream of {path} loaded cleanly; rebuilt anyway: {report}");
    }
    let nodes = engine
        .tree_mut()
        .check_invariants()
        .map_err(|e| format!("post-repair scrub failed: {e}"))?;
    println!(
        "  rebuilt index: {nodes} node(s) over {} window(s), invariants OK",
        engine.num_windows()
    );
    engine
        .save_to_path(Path::new(path))
        .map_err(|e| format!("writing {path}: {e}"))?;
    println!("saved repaired engine to {path}");
    Ok(())
}

fn cmd_health(a: &Args) -> Result<(), String> {
    let path = a.require("engine")?;
    let engine = SearchEngine::load_from_path(Path::new(path))
        .map_err(|e| format!("loading {path}: {e}"))?;
    println!("engine: {path}");
    println!("{}", engine.health());
    Ok(())
}

fn cmd_serve(a: &Args) -> Result<(), String> {
    let path = a.require("engine")?;
    // Parse the whole config up front so a malformed flag fails before the
    // server takes ownership of the engine file.
    let cfg = tsss::server::ServerConfig {
        addr: a.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: a.get_parsed("workers", 4)?,
        queue_capacity: a.get_parsed("queue", 64)?,
        keep_alive_requests: a.get_parsed("keep-alive-requests", 32)?,
        shards: a.get_parsed("shards", 1)?,
        ..Default::default()
    };
    // The server owns the engine file from here on: appends are write-ahead
    // logged to `<engine>.wal` and fsynced before they are acknowledged, so
    // an HTTP 200 from /append survives a crash; POST /save folds the log
    // into the engine file atomically.
    let master =
        DurableEngine::open(Path::new(path)).map_err(|e| format!("loading {path}: {e}"))?;
    let replay = master.replay_report();
    if replay.tail_records > 0 || replay.damaged_tail || replay.index_repaired {
        println!(
            "recovery: {} WAL records in the tail, {} replayed, {} already saved{}{}",
            replay.tail_records,
            replay.applied,
            replay.skipped,
            if replay.damaged_tail {
                "; dropped a torn (unacknowledged) tail record"
            } else {
                ""
            },
            if replay.index_repaired {
                "; rebuilt a damaged index stream"
            } else {
                ""
            },
        );
    }
    println!(
        "serving {path}: {} series, {} windows (durable appends: WAL at {})",
        master.engine().num_series(),
        master.engine().num_windows(),
        DurableEngine::wal_path_for(Path::new(path)).display()
    );
    if cfg.shards > 1 {
        println!(
            "sharded serving: {} fault domains (scatter-gather; a failed shard \
             degrades only its slice, see /health shard_breakers)",
            cfg.shards.min(master.engine().num_series().max(1))
        );
    }
    let server = tsss::server::Server::start_durable(master, &cfg)
        .map_err(|e| format!("binding {}: {e}", cfg.addr))?;
    println!("listening on http://{}", server.addr());
    println!(
        "endpoints: GET /health /metrics · POST /search /knn /znormalized /long /batch /append /repair /save"
    );
    server.join();
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    println!("tsss demo: generate → build → disguise → recover\n");
    let market = MarketSimulator::new(MarketConfig::small(40, 200, 1)).generate();
    let engine = SearchEngine::build(&market, EngineConfig::small(32))
        .expect("data set fits the u32 window ids");
    println!(
        "built an index over {} windows of {} synthetic stocks",
        engine.num_windows(),
        market.len()
    );
    let source = market[7].window(50, 32).expect("window exists");
    let disguise = tsss::geometry::scale_shift::ScaleShift { a: 3.0, b: -25.0 };
    let query = disguise.apply(source);
    println!("query: stock 7, days 50..82, scaled ×3 and shifted −25");
    let res = engine
        .search(&query, 1e-6, SearchOptions::default())
        .map_err(|e| e.to_string())?;
    let best = res.matches.first().ok_or("demo found no match")?;
    println!(
        "recovered: {} with a = {:.4}, b = {:+.3} (inverse of the disguise)",
        best.id, best.transform.a, best.transform.b
    );
    Ok(())
}
